"""Differential tests: int-backed GF(2) kernel vs the numpy reference.

The fast kernel in ``repro.gf2`` (Python-int bit vectors, pivot-mask
Gauss reduction) claims *zero* behavior change against the original
numpy-words implementation preserved in ``repro.gf2.reference``.  These
tests make the claim executable:

* hypothesis drives random operation sequences (set / flip / ixor /
  insert / reduce / decode) through both kernels and asserts identical
  results **and** identical :class:`OpCounter` totals — the cost-model
  contract the Figure-8 benches and the checked-in goldens rely on;
* a regression pin on :meth:`BitVector.key` / ``hash`` verifies the
  serialized layout (little-endian uint64 words) never drifted.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.counters import OpCounter
from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import GF2Matrix, IncrementalRref
from repro.gf2.reference import ReferenceBitVector, ReferenceRref


def _pair(nbits: int) -> tuple[BitVector, ReferenceBitVector]:
    return BitVector.zeros(nbits), ReferenceBitVector.zeros(nbits)


def _assert_same(fast: BitVector, ref: ReferenceBitVector) -> None:
    assert fast.nbits == ref.nbits
    assert fast.key() == ref.key()
    assert fast.weight() == ref.weight()
    assert fast.is_zero() == ref.is_zero()
    assert fast.first_index() == ref.first_index()
    assert list(fast.indices()) == list(ref.indices())


# ----------------------------------------------------------------------
# BitVector op sequences
# ----------------------------------------------------------------------
_vec_ops = st.lists(
    st.tuples(
        st.sampled_from(["set", "clear", "flip", "ixor"]),
        st.integers(min_value=0, max_value=10_000),
    ),
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(nbits=st.integers(1, 200), ops=_vec_ops, seed=st.integers(0, 2**31))
def test_bitvector_op_sequences_match_reference(nbits, ops, seed):
    rng = np.random.default_rng(seed)
    mix = ReferenceBitVector.random(nbits, rng, density=0.4)
    mix_fast = BitVector(nbits, mix.words)
    fast, ref = _pair(nbits)
    for op, raw in ops:
        i = raw % nbits
        if op == "set":
            fast.set(i)
            ref.set(i)
        elif op == "clear":
            fast.set(i, False)
            ref.set(i, False)
        elif op == "flip":
            fast.flip(i)
            ref.flip(i)
        else:
            fast.ixor(mix_fast)
            ref.ixor(mix)
        _assert_same(fast, ref)
    # get() agrees bit-for-bit at the end of the sequence.
    assert [fast.get(i) for i in range(nbits)] == [
        ref.get(i) for i in range(nbits)
    ]


@settings(max_examples=80, deadline=None)
@given(nbits=st.integers(0, 200), seed=st.integers(0, 2**31))
def test_random_constructor_consumes_identical_rng_stream(nbits, seed):
    # Same seed -> same Bernoulli draws -> same bits in both kernels,
    # i.e. the kernel swap is invisible to any seeded experiment.
    fast = BitVector.random(nbits, np.random.default_rng(seed), density=0.3)
    ref = ReferenceBitVector.random(
        nbits, np.random.default_rng(seed), density=0.3
    )
    assert fast.key() == ref.key()


# ----------------------------------------------------------------------
# IncrementalRref: insert / reduce / decode + OpCounter totals
# ----------------------------------------------------------------------
@st.composite
def _rref_case(draw):
    k = draw(st.integers(1, 64))
    m = draw(st.one_of(st.none(), st.integers(1, 8)))
    n = draw(st.integers(1, 40))
    seed = draw(st.integers(0, 2**31))
    return k, m, n, seed


@settings(max_examples=100, deadline=None)
@given(_rref_case())
def test_rref_sequences_match_reference_including_counters(case):
    k, m, n, seed = case
    rng = np.random.default_rng(seed)
    fast = IncrementalRref(k, payload_nbytes=m, counter=OpCounter())
    ref = ReferenceRref(k, payload_nbytes=m, counter=OpCounter())
    for _ in range(n):
        bits = (rng.random(k) < 0.35).astype(np.uint8)
        payload = (
            rng.integers(0, 256, size=m, dtype=np.uint8)
            if m is not None
            else None
        )
        fv = BitVector.from_bits(bits)
        rv = ReferenceBitVector.from_indices(k, np.flatnonzero(bits))
        if rng.random() < 0.25:
            fr, fp = fast.reduce(fv, payload)
            rr, rp = ref.reduce(rv, payload)
            assert fr.key() == rr.key()
            assert (fp is None) == (rp is None)
            if fp is not None:
                assert np.array_equal(fp, rp)
        assert fast.insert(fv, payload) == ref.insert(rv, payload)
        assert fast.rank == ref.rank
        assert fast.is_innovative(fv) == ref.is_innovative(rv)
    assert fast.pivot_columns() == ref.pivot_columns()
    assert [r.key() for r in fast.basis_rows()] == [
        r.key() for r in ref.basis_rows()
    ]
    # The cost-model contract: every counted op, same total.
    assert fast.counter.snapshot() == ref.counter.snapshot()
    if m is not None and fast.is_full_rank():
        assert ref.is_full_rank()
        assert [p.tobytes() for p in fast.decode()] == [
            p.tobytes() for p in ref.decode()
        ]


@settings(max_examples=60, deadline=None)
@given(
    nrows=st.integers(0, 20),
    ncols=st.integers(1, 40),
    seed=st.integers(0, 2**31),
)
def test_from_dense_packbits_matches_reference_bits(nrows, ncols, seed):
    rng = np.random.default_rng(seed)
    dense = rng.integers(0, 4, size=(nrows, ncols))  # values mod 2 matter
    mat = GF2Matrix.from_dense(dense)
    assert mat.nrows == nrows
    for i in range(nrows):
        expected = ReferenceBitVector.from_indices(
            ncols, np.flatnonzero(dense[i] % 2)
        )
        assert mat.rows[i].key() == expected.key()
    if nrows:  # an empty GF2Matrix has always collapsed to ncols == 0
        assert np.array_equal(mat.to_dense(), dense % 2)


# ----------------------------------------------------------------------
# key() / hash layout regression pins
# ----------------------------------------------------------------------
def test_key_layout_is_little_endian_uint64_words():
    # Bit i lives in word i >> 6 at position i & 63; words serialize
    # little-endian.  Pinned against hand-built byte strings so any
    # future kernel swap that drifts the layout fails loudly.
    v = BitVector.from_indices(70, [0, 1, 63, 64, 69])
    expected = ((1 << 0) | (1 << 1) | (1 << 63)).to_bytes(8, "little") + (
        (1 << 0) | (1 << 5)
    ).to_bytes(8, "little")
    assert v.key() == expected
    assert v.nwords() == 2
    assert list(v.words) == [
        (1 << 0) | (1 << 1) | (1 << 63),
        (1 << 0) | (1 << 5),
    ]


@pytest.mark.parametrize("nbits", [0, 1, 63, 64, 65, 128, 200])
def test_key_and_hash_match_numpy_reference(nbits):
    rng = np.random.default_rng(nbits)
    ref = ReferenceBitVector.random(nbits, rng, density=0.5)
    fast = BitVector(nbits, ref.words)
    assert fast.key() == ref.key() == ref.words.tobytes()
    # hash() is derived from (nbits, key()) in both kernels, so hashed
    # containers see identical keys across the swap.
    assert hash(fast) == hash((nbits, fast.key())) == hash(ref)


def test_words_property_round_trips():
    v = BitVector.from_indices(130, [0, 64, 129])
    w = v.words
    assert w.dtype == np.uint64 and w.shape == (3,)
    assert BitVector(130, w) == v
