"""Tests for repro.coding.packet."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import EncodedPacket, content_blocks, make_content, xor_payloads
from repro.costmodel import OpCounter
from repro.errors import DimensionError
from repro.gf2 import BitVector


class TestXorPayloads:
    def test_both_none_counts_but_returns_none(self):
        c = OpCounter()
        assert xor_payloads(None, None, c) is None
        assert c.get("payload_xor") == 1

    def test_one_side_none_copies(self):
        a = np.array([1, 2, 3], dtype=np.uint8)
        out = xor_payloads(None, a)
        assert np.array_equal(out, a)
        out[0] = 99
        assert a[0] == 1  # copy, not alias

    def test_xor_values(self):
        a = np.array([0xFF, 0x00], dtype=np.uint8)
        b = np.array([0x0F, 0xF0], dtype=np.uint8)
        assert np.array_equal(xor_payloads(a, b), [0xF0, 0xF0])

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            xor_payloads(np.zeros(2, np.uint8), np.zeros(3, np.uint8))


class TestEncodedPacket:
    def test_native_constructor(self):
        p = EncodedPacket.native(8, 3)
        assert p.degree == 1 and p.is_native()
        assert p.support() == {3}
        assert p.k == 8

    def test_combine_with_payloads(self):
        content = make_content(4, 5, rng=0)
        p = EncodedPacket.combine(4, [0, 2], payloads=content)
        assert p.support() == {0, 2}
        assert np.array_equal(p.payload, content[0] ^ content[2])

    def test_combine_symbolic_counts_data_ops(self):
        c = OpCounter()
        EncodedPacket.combine(8, [0, 1, 2], counter=c)
        assert c.get("payload_xor") == 2

    def test_ixor_matches_native_xor(self):
        content = make_content(6, 4, rng=1)
        a = EncodedPacket.combine(6, [0, 1], payloads=content)
        b = EncodedPacket.combine(6, [1, 2], payloads=content)
        a.ixor(b)
        assert a.support() == {0, 2}
        assert np.array_equal(a.payload, content[0] ^ content[2])

    def test_xor_operator_leaves_operands(self):
        a = EncodedPacket.native(4, 0)
        b = EncodedPacket.native(4, 1)
        c = a ^ b
        assert c.support() == {0, 1}
        assert a.support() == {0} and b.support() == {1}

    def test_header_nbytes(self):
        assert EncodedPacket.native(8, 0).header_nbytes() == 1
        assert EncodedPacket.native(9, 0).header_nbytes() == 2
        assert EncodedPacket.native(2048, 0).header_nbytes() == 256

    def test_copy_independent(self):
        content = make_content(4, 3, rng=2)
        a = EncodedPacket.combine(4, [0], payloads=content)
        b = a.copy()
        b.vector.flip(1)
        b.payload[0] ^= 0xFF
        assert a.support() == {0}
        assert np.array_equal(a.payload, content[0])

    def test_equality_semantics(self):
        a = EncodedPacket.native(4, 0)
        b = EncodedPacket.native(4, 0)
        assert a == b
        c = EncodedPacket(BitVector.from_indices(4, [0]), np.zeros(2, np.uint8))
        assert a != c  # symbolic vs payload

    def test_indices_sorted(self):
        p = EncodedPacket.combine(10, [7, 1, 4])
        assert list(p.indices()) == [1, 4, 7]


class TestContentHelpers:
    def test_make_content_shape_and_determinism(self):
        a = make_content(8, 16, rng=42)
        b = make_content(8, 16, rng=42)
        assert a.shape == (8, 16) and a.dtype == np.uint8
        assert np.array_equal(a, b)

    def test_make_content_validates(self):
        with pytest.raises(DimensionError):
            make_content(0, 4)
        with pytest.raises(DimensionError):
            make_content(4, 0)

    def test_content_blocks_round_trip(self):
        data = bytes(range(100))
        blocks = content_blocks(data, 7)
        assert blocks.shape[0] == 7
        assert bytes(blocks.reshape(-1)[:100]) == data

    def test_content_blocks_empty_data(self):
        blocks = content_blocks(b"", 3)
        assert blocks.shape == (3, 1)
        assert not blocks.any()

    def test_content_blocks_validates_k(self):
        with pytest.raises(DimensionError):
            content_blocks(b"abc", 0)


@settings(max_examples=50)
@given(
    st.integers(2, 40).flatmap(
        lambda k: st.tuples(
            st.just(k),
            st.lists(st.integers(0, k - 1), min_size=1, unique=True),
            st.lists(st.integers(0, k - 1), min_size=1, unique=True),
        )
    )
)
def test_packet_xor_support_is_symmetric_difference(case):
    k, ia, ib = case
    content = make_content(k, 8, rng=5)
    a = EncodedPacket.combine(k, ia, payloads=content)
    b = EncodedPacket.combine(k, ib, payloads=content)
    c = a ^ b
    assert c.support() == set(ia) ^ set(ib)
    # Payload equals XOR of the natives in the symmetric difference.
    expect = np.zeros(8, np.uint8)
    for i in set(ia) ^ set(ib):
        expect ^= content[i]
    assert np.array_equal(c.payload, expect)
