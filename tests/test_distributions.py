"""Tests for repro.lt.distributions (Fig. 2 foundations)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DistributionError
from repro.lt.distributions import (
    DegreeDistribution,
    IdealSoliton,
    RobustSoliton,
    TruncatedUniform,
    empirical_degrees,
    total_variation,
)
from repro.rng import make_rng


class TestIdealSoliton:
    def test_pmf_sums_to_one(self):
        d = IdealSoliton(100)
        assert math.isclose(d.pmf.sum(), 1.0, abs_tol=1e-9)

    def test_known_values(self):
        k = 10
        d = IdealSoliton(k)
        # rho is already normalised: sum 1/k + sum 1/(i(i-1)) = 1
        assert math.isclose(d.probability(1), 1 / k, rel_tol=1e-12)
        assert math.isclose(d.probability(2), 1 / 2, rel_tol=1e-12)
        assert math.isclose(d.probability(10), 1 / 90, rel_tol=1e-12)

    def test_k_validation(self):
        with pytest.raises(DistributionError):
            IdealSoliton(0)


class TestRobustSoliton:
    def test_pmf_sums_to_one(self):
        for k in (16, 128, 2048):
            d = RobustSoliton(k)
            assert math.isclose(d.pmf.sum(), 1.0, abs_tol=1e-9)

    def test_low_degree_mass_dominates(self):
        # Paper §III-B3 claims "more than half of the encoded packets
        # are of degree 1 or 2".  Analytically the Robust Soliton puts
        # 0.42-0.50 there depending on (c, delta) — the Ideal Soliton
        # alone gives 0.50 and tau dilutes it — so we assert the claim's
        # substance (degrees 1-2 dominate by far) rather than the loose
        # 50 % figure.
        d = RobustSoliton(2048, c=0.1, delta=0.05)
        assert d.low_degree_mass() > 0.4
        # ... and no other degree (including the spike) comes close.
        assert d.low_degree_mass() > 2 * d.pmf[3:].max()

    def test_degree_le_3_is_majority(self):
        # §III-C1: degree <= 3 covers "almost two thirds" of packets.
        d = RobustSoliton(2048, c=0.1, delta=0.05)
        assert d.mass_below(3) > 0.55

    def test_spike_exists(self):
        d = RobustSoliton(2048, c=0.1, delta=0.05)
        spike = d.spike
        assert 2 < spike < 2048
        # The spike dominates its immediate neighbourhood.
        assert d.probability(spike) > d.probability(spike - 1)
        assert d.probability(spike) > d.probability(spike + 1)

    def test_mean_is_order_log_k(self):
        for k in (256, 1024, 4096):
            d = RobustSoliton(k)
            assert d.mean() < 4 * math.log(k)
            assert d.mean() > 0.5 * math.log(k)

    def test_parameter_validation(self):
        with pytest.raises(DistributionError):
            RobustSoliton(0)
        with pytest.raises(DistributionError):
            RobustSoliton(16, c=-1)
        with pytest.raises(DistributionError):
            RobustSoliton(16, delta=1.5)

    def test_small_k_degenerate_but_valid(self):
        d = RobustSoliton(2)
        assert math.isclose(d.pmf.sum(), 1.0, abs_tol=1e-9)
        assert d.sample(make_rng(0)) in (1, 2)

    def test_sampling_matches_pmf(self):
        d = RobustSoliton(64)
        rng = make_rng(7)
        samples = d.sample_many(40_000, rng)
        emp = empirical_degrees(samples.tolist(), 64)
        assert total_variation(emp, d.pmf) < 0.02


class TestTruncatedUniform:
    def test_uniform_mass(self):
        d = TruncatedUniform(10, 5)
        for i in range(1, 6):
            assert math.isclose(d.probability(i), 0.2, rel_tol=1e-12)
        assert d.probability(6) == 0.0

    def test_default_dmax_is_k(self):
        d = TruncatedUniform(4)
        assert d.max_degree() == 4

    def test_validation(self):
        with pytest.raises(DistributionError):
            TruncatedUniform(4, 5)


class TestBaseDistribution:
    def test_pmf_shape_validation(self):
        with pytest.raises(DistributionError):
            DegreeDistribution(3, np.array([0.0, 0.5, 0.5]))  # wrong len

    def test_pmf_mass_at_zero_rejected(self):
        with pytest.raises(DistributionError):
            DegreeDistribution(2, np.array([0.1, 0.4, 0.5]))

    def test_pmf_normalisation_enforced(self):
        with pytest.raises(DistributionError):
            DegreeDistribution(2, np.array([0.0, 0.3, 0.3]))

    def test_mass_below(self):
        d = TruncatedUniform(4)
        assert d.mass_below(0) == 0.0
        assert math.isclose(d.mass_below(2), 0.5, rel_tol=1e-12)
        assert math.isclose(d.mass_below(99), 1.0, rel_tol=1e-12)

    def test_probability_outside_support(self):
        d = IdealSoliton(8)
        assert d.probability(0) == 0.0
        assert d.probability(9) == 0.0

    def test_total_variation_validates(self):
        with pytest.raises(DistributionError):
            total_variation(np.zeros(3), np.zeros(4))

    def test_empirical_degrees_validates(self):
        with pytest.raises(DistributionError):
            empirical_degrees([0], 4)
        with pytest.raises(DistributionError):
            empirical_degrees([5], 4)


# ----------------------------------------------------------------------
# Property-based
# ----------------------------------------------------------------------


@settings(max_examples=40)
@given(st.integers(1, 512))
def test_ideal_soliton_always_normalised(k):
    d = IdealSoliton(k)
    assert math.isclose(d.pmf.sum(), 1.0, abs_tol=1e-9)
    assert (d.pmf >= 0).all()


@settings(max_examples=40)
@given(
    st.integers(4, 512),
    st.floats(0.01, 0.5),
    st.floats(0.01, 0.9),
)
def test_robust_soliton_always_valid(k, c, delta):
    d = RobustSoliton(k, c=c, delta=delta)
    assert math.isclose(d.pmf.sum(), 1.0, abs_tol=1e-9)
    assert d.beta >= 1.0  # tau adds non-negative mass
    assert 1 <= d.spike <= k


@settings(max_examples=30)
@given(st.integers(2, 256), st.integers(0, 2**32 - 1))
def test_samples_always_in_support(k, seed):
    d = RobustSoliton(k)
    rng = make_rng(seed)
    for _ in range(20):
        assert 1 <= d.sample(rng) <= k
