"""Tests for operation counters and the cycle model."""

import pytest

from repro.costmodel import CONTROL_OPS, CostBreakdown, CycleModel, OpCounter


class TestOpCounter:
    def test_add_and_get(self):
        c = OpCounter()
        c.add("bp_edge")
        c.add("bp_edge", 3)
        assert c.get("bp_edge") == 4
        assert c.get("unknown") == 0

    def test_add_zero_is_noop(self):
        c = OpCounter()
        c.add("x", 0)
        assert not c
        assert "x" not in c.counts

    def test_merge(self):
        a = OpCounter({"x": 1})
        b = OpCounter({"x": 2, "y": 5})
        a.merge(b)
        assert a.get("x") == 3 and a.get("y") == 5

    def test_snapshot_diff(self):
        c = OpCounter()
        c.add("x", 2)
        snap = c.snapshot()
        c.add("x", 3)
        c.add("y", 1)
        assert c.diff(snap) == {"x": 3, "y": 1}

    def test_reset(self):
        c = OpCounter({"x": 1})
        c.reset()
        assert not c and c.total() == 0

    def test_totals(self):
        c = OpCounter({"bp_edge": 2, "payload_xor": 3, "custom": 7})
        assert c.control_total() == 2
        assert c.data_total() == 3
        assert c.total() == 12
        assert c.total(["custom"]) == 7

    def test_constructor_copies(self):
        src = {"x": 1}
        c = OpCounter(src)
        src["x"] = 99
        assert c.get("x") == 1


class TestCycleModel:
    def test_control_cycles_weighting(self):
        model = CycleModel(m=100)
        c = OpCounter({"vec_word_xor": 10, "table_op": 2})
        expect = 10 * model.word_xor_cycles + 2 * model.table_op_cycles
        assert model.control_cycles(c) == pytest.approx(expect)

    def test_data_cycles_scale_with_m(self):
        c = OpCounter({"payload_xor": 4})
        small = CycleModel(m=100).data_cycles(c)
        large = CycleModel(m=200).data_cycles(c)
        assert large == pytest.approx(2 * small)

    def test_memory_factor(self):
        c = OpCounter({"payload_xor": 1})
        base = CycleModel(m=8, memory_factor=1.0).data_cycles(c)
        slow = CycleModel(m=8, memory_factor=4.0).data_cycles(c)
        assert slow == pytest.approx(4 * base)

    def test_extra_weights(self):
        model = CycleModel(m=1, extra_weights={"my_op": 5.0})
        c = OpCounter({"my_op": 3})
        assert model.control_cycles(c) == pytest.approx(15.0)

    def test_breakdown_total(self):
        model = CycleModel(m=8)
        c = OpCounter({"bp_edge": 1, "payload_xor": 1})
        b = model.breakdown(c)
        assert b.total_cycles == pytest.approx(
            b.control_cycles + b.data_cycles
        )
        assert b.control_cycles > 0 and b.data_cycles > 0

    def test_per_normalisation(self):
        b = CostBreakdown(100.0, 50.0)
        half = b.per(2)
        assert half.control_cycles == pytest.approx(50.0)
        assert half.data_cycles == pytest.approx(25.0)
        assert b.per(0) is b  # degenerate: unchanged

    def test_data_cycles_per_byte(self):
        model = CycleModel(m=1024)
        c = OpCounter({"payload_xor": 8})
        per_byte = model.data_cycles_per_byte(c, content_bytes=1024)
        assert per_byte == pytest.approx(8 * model.payload_byte_cycles)
        assert model.data_cycles_per_byte(c, 0) == 0.0

    def test_all_control_ops_have_weights(self):
        # Every canonical control op must contribute to the model;
        # otherwise a hot loop would silently cost nothing.
        model = CycleModel(m=1)
        for op in CONTROL_OPS:
            c = OpCounter({op: 1})
            assert model.control_cycles(c) > 0, op
