"""Tests for the gossip peer-sampling substrate."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gossip.peer_sampling import UniformSampler, ViewSampler


def test_uniform_rejects_tiny_network():
    with pytest.raises(SimulationError):
        UniformSampler(1)


def test_uniform_never_returns_self():
    sampler = UniformSampler(10, rng=0)
    for node in range(10):
        for _ in range(20):
            peers = sampler.peers(node, 3, 0)
            assert node not in peers
            assert len(peers) == len(set(peers)) == 3
            assert all(0 <= p < 10 for p in peers)


def test_uniform_caps_at_membership():
    sampler = UniformSampler(4, rng=1)
    peers = sampler.peers(0, 10, 0)
    assert sorted(peers) == [1, 2, 3]


def test_uniform_is_roughly_uniform():
    sampler = UniformSampler(6, rng=2)
    counts = np.zeros(6)
    for _ in range(3000):
        (p,) = sampler.peers(0, 1, 0)
        counts[p] += 1
    assert counts[0] == 0
    expected = 3000 / 5
    assert np.all(np.abs(counts[1:] - expected) < 0.25 * expected)


def test_view_sampler_validation():
    with pytest.raises(SimulationError):
        ViewSampler(1)
    with pytest.raises(SimulationError):
        ViewSampler(8, view_size=0)
    with pytest.raises(SimulationError):
        ViewSampler(8, renewal_period=0)


def test_view_sampler_draws_within_view():
    sampler = ViewSampler(12, view_size=4, rng=3)
    for node in range(12):
        view = set(sampler.view_of(node))
        assert node not in view
        assert len(view) == 4
        peers = sampler.peers(node, 2, 0)
        assert set(peers) <= view


def test_view_sampler_renews_views():
    sampler = ViewSampler(30, view_size=6, renewal_period=1, rng=4)
    before = sampler.view_of(0)
    sampler.peers(0, 1, 5)  # advancing rounds triggers renewal
    after = sampler.view_of(0)
    assert before != after or len(set(before) | set(after)) > 6


def test_view_sampler_views_stay_valid_after_renewal():
    sampler = ViewSampler(20, view_size=5, renewal_period=2, rng=5)
    for round_index in range(0, 30, 3):
        for node in range(20):
            peers = sampler.peers(node, 3, round_index)
            assert node not in peers
            assert len(peers) == len(set(peers))


def test_degenerate_two_node_network_always_picks_the_other():
    # N=2 is the smallest legal overlay; the only valid draw is the
    # other node, for both sampler flavours, at any round.
    uniform = UniformSampler(2, rng=6)
    view = ViewSampler(2, view_size=4, rng=7)
    for round_index in range(25):
        assert uniform.peers(0, 1, round_index) == [1]
        assert uniform.peers(1, 1, round_index) == [0]
        assert view.peers(0, 1, round_index) == [1]
        assert view.peers(1, 1, round_index) == [0]


def test_view_sampler_clips_view_to_membership():
    sampler = ViewSampler(3, view_size=10, rng=8)
    for node in range(3):
        view = sampler.view_of(node)
        assert len(view) == 2
        assert node not in view


def test_view_sampler_never_self_samples_under_heavy_renewal():
    sampler = ViewSampler(10, view_size=3, renewal_period=1, rng=9)
    for round_index in range(200):
        node = round_index % 10
        assert node not in sampler.peers(node, 2, round_index)
        assert node not in sampler.view_of(node)
