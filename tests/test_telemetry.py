"""End-to-end contracts of the fleet telemetry layer (ISSUE 8).

The promises under test:

* enabling telemetry changes nothing — the aggregate JSON of a
  telemetry-collecting run is byte-identical to a plain run;
* the merged ``telemetry.json`` is byte-identical across worker counts
  × shard counts × interrupt/resume cycles, and the serial
  ``TrialRunner`` agrees with the sharded ``FleetRunner``;
* resume only replays a checkpoint into a telemetry run together with
  its telemetry shard file — a missing/corrupt/mismatched shard file
  recomputes the shard (with a logged warning) instead of silently
  dropping its telemetry;
* ``validate_telemetry`` rejects malformed artifacts with named
  violations.
"""

import json
import logging

import pytest

from repro.obs.telemetry import (
    TELEMETRY_FORMAT,
    TELEMETRY_VERSION,
    TelemetryStore,
    read_telemetry,
    validate_telemetry,
    write_telemetry,
)
from repro.scenarios import (
    FleetRunner,
    FleetStop,
    ScenarioSpec,
    TrialRunner,
)
from repro.scenarios.runner import (
    TrialSpec,
    merge_trial_snapshots,
    run_trial,
    run_trial_telemetry,
    trial_seed,
)

SPEC = ScenarioSpec(name="tel-x", n_nodes=8, k=16, loss_rate=0.1)
OTHER = ScenarioSpec(name="tel-y", n_nodes=8, k=16)
SEED = 2010
TRIALS = 6


def _agg_json(aggregates) -> str:
    return json.dumps(
        {name: agg.to_dict() for name, agg in sorted(aggregates.items())},
        sort_keys=True,
    )


# -- worker function -----------------------------------------------------
def test_run_trial_telemetry_result_matches_plain_run_trial():
    trial = TrialSpec(SPEC, 0, trial_seed(SEED, SPEC.name, 0))
    plain = run_trial(trial)
    result, snapshot = run_trial_telemetry(trial)
    assert result.to_dict() == plain.to_dict()  # collection is free
    assert snapshot["counters"]["rounds"] == result.rounds
    assert snapshot["labels"]["kind"] == "epidemic"
    assert snapshot["histograms"]["completion_round"]["count"] > 0


def test_merge_trial_snapshots_counts_trials():
    trials = [
        TrialSpec(SPEC, i, trial_seed(SEED, SPEC.name, i)) for i in range(2)
    ]
    snapshots = [run_trial_telemetry(t)[1] for t in trials]
    section = merge_trial_snapshots(snapshots)
    assert section["n_trials"] == 2
    assert section["counters"]["rounds"] == sum(
        s["counters"]["rounds"] for s in snapshots
    )


# -- invariance ----------------------------------------------------------
def test_telemetry_collection_leaves_aggregates_byte_identical(tmp_path):
    plain = TrialRunner(n_workers=1).run_grid([SPEC, OTHER], TRIALS, SEED)
    with_telemetry = TrialRunner(
        n_workers=1, telemetry_dir=tmp_path
    ).run_grid([SPEC, OTHER], TRIALS, SEED)
    assert _agg_json(plain) == _agg_json(with_telemetry)
    payload = read_telemetry(tmp_path / "telemetry.json")
    validate_telemetry(payload)
    assert set(payload["scenarios"]) == {SPEC.name, OTHER.name}


def test_telemetry_is_worker_and_shard_count_invariant(tmp_path):
    texts = []
    for name, runner in (
        ("serial", TrialRunner(n_workers=1, telemetry_dir=tmp_path / "a")),
        ("pooled", TrialRunner(n_workers=3, telemetry_dir=tmp_path / "b")),
        (
            "fleet",
            FleetRunner(
                n_workers=2, n_shards=3, telemetry_dir=tmp_path / "c"
            ),
        ),
        (
            "fleet1",
            FleetRunner(
                n_workers=1, n_shards=1, telemetry_dir=tmp_path / "d"
            ),
        ),
    ):
        runner.run_grid([SPEC, OTHER], TRIALS, SEED)
        texts.append(
            (name, (runner.telemetry_dir / "telemetry.json").read_bytes())
        )
    reference = texts[0][1]
    for name, text in texts[1:]:
        assert text == reference, f"{name} telemetry diverged"
    validate_telemetry(json.loads(reference))


def test_fleet_interrupt_resume_telemetry_byte_identical(tmp_path):
    golden_dir = tmp_path / "golden"
    FleetRunner(
        n_workers=1, n_shards=3, telemetry_dir=golden_dir
    ).run_grid([SPEC], TRIALS, SEED)
    golden = (golden_dir / "telemetry.json").read_bytes()

    ckpt = tmp_path / "ckpt"
    out = tmp_path / "resumed"
    interrupted = FleetRunner(
        n_workers=1,
        n_shards=3,
        checkpoint_dir=ckpt,
        stop_after_shards=1,
        telemetry_dir=out,
    )
    with pytest.raises(FleetStop):
        interrupted.run_grid([SPEC], TRIALS, SEED)
    assert interrupted.last_telemetry is None  # no partial artifact
    assert not (out / "telemetry.json").exists()

    resumed = FleetRunner(
        n_workers=2,
        n_shards=3,
        checkpoint_dir=ckpt,
        resume=True,
        telemetry_dir=out,
    )
    resumed.run_grid([SPEC], TRIALS, SEED)
    assert (out / "telemetry.json").read_bytes() == golden


def test_resume_without_telemetry_shards_recomputes(tmp_path, caplog):
    ckpt = tmp_path / "ckpt"
    out = tmp_path / "out"
    golden_dir = tmp_path / "golden"
    FleetRunner(
        n_workers=1, n_shards=2, telemetry_dir=golden_dir
    ).run_grid([SPEC], TRIALS, SEED)
    FleetRunner(
        n_workers=1, n_shards=2, checkpoint_dir=ckpt, telemetry_dir=out
    ).run_grid([SPEC], TRIALS, SEED)
    # A checkpoint written by a telemetry-free (or older) run: the
    # checkpoints stay but the telemetry shard files vanish.
    removed = list(ckpt.glob("telemetry-*.json"))
    assert len(removed) == 2
    for path in removed:
        path.unlink()
    with caplog.at_level(logging.WARNING):
        resumed = FleetRunner(
            n_workers=1,
            n_shards=2,
            checkpoint_dir=ckpt,
            resume=True,
            telemetry_dir=out,
        )
        resumed.run_grid([SPEC], TRIALS, SEED)
    assert "recomputing" in caplog.text
    assert (out / "telemetry.json").read_bytes() == (
        golden_dir / "telemetry.json"
    ).read_bytes()


def test_resume_with_telemetry_shards_replays_without_rerun(tmp_path):
    ckpt = tmp_path / "ckpt"
    out = tmp_path / "out"
    FleetRunner(
        n_workers=1, n_shards=2, checkpoint_dir=ckpt, telemetry_dir=out
    ).run_grid([SPEC], TRIALS, SEED)
    golden = (out / "telemetry.json").read_bytes()
    resumed = FleetRunner(
        n_workers=1,
        n_shards=2,
        checkpoint_dir=ckpt,
        resume=True,
        telemetry_dir=out,
    )
    # Replay must not execute a single trial: break the worker path.
    import repro.scenarios.fleet as fleet_module

    original = fleet_module.parallel_map

    def _explode(*args, **kwargs):
        raise AssertionError("resume re-ran a checkpointed shard")

    fleet_module.parallel_map = _explode
    try:
        resumed.run_grid([SPEC], TRIALS, SEED)
    finally:
        fleet_module.parallel_map = original
    assert (out / "telemetry.json").read_bytes() == golden


# -- TelemetryStore paranoia ---------------------------------------------
def test_telemetry_store_rejects_corrupt_and_mismatched(tmp_path, caplog):
    from repro.scenarios.fleet import grid_fingerprint, plan_shards

    shards = plan_shards([SPEC], 4, master_seed=SEED, n_shards=2)
    fingerprint = grid_fingerprint([SPEC], 4, SEED, n_shards=2)
    store = TelemetryStore(tmp_path)
    section = {"n_trials": 2, "counters": {"rounds": 7}}
    store.save(shards[0], fingerprint, section)
    assert store.load(shards[0], fingerprint) == section
    # Wrong fingerprint -> stale workload, recompute.
    with caplog.at_level(logging.WARNING):
        assert store.load(shards[0], "deadbeef") is None
    assert "fingerprint" in caplog.text
    # Corrupt JSON -> recompute.
    path = store.path_for(shards[0])
    path.write_text("{not json")
    with caplog.at_level(logging.WARNING):
        assert store.load(shards[0], fingerprint) is None
    # Another shard's file is never accepted for this shard.
    store.save(shards[1], fingerprint, section)
    data = json.loads(store.path_for(shards[1]).read_text())
    path.write_text(json.dumps(data))  # shard 1 payload at shard 0 path
    assert store.load(shards[0], fingerprint) is None


# -- artifact schema -----------------------------------------------------
def test_validate_telemetry_names_violations(tmp_path):
    good = {
        "format": TELEMETRY_FORMAT,
        "version": TELEMETRY_VERSION,
        "scenarios": {
            "s": {
                "n_trials": 2,
                "labels": {},
                "counters": {"rounds": 5},
                "gauges": {},
                "histograms": {},
            }
        },
    }
    validate_telemetry(good)
    for mutate, message in [
        (lambda p: p.update(format="x"), "format"),
        (lambda p: p.update(version=99), "version"),
        (lambda p: p.update(scenarios={}), "scenarios"),
        (
            lambda p: p["scenarios"]["s"].update(n_trials=0),
            "n_trials",
        ),
        (
            lambda p: p["scenarios"]["s"]["counters"].update(rounds=-1),
            "counter",
        ),
        (
            lambda p: p["scenarios"]["s"].update(
                histograms={"h": {"boundaries": []}}
            ),
            "histogram",
        ),
    ]:
        payload = json.loads(json.dumps(good))
        mutate(payload)
        with pytest.raises(ValueError, match=message):
            validate_telemetry(payload)


def test_write_telemetry_is_atomic_and_sorted(tmp_path):
    path = tmp_path / "telemetry.json"
    a = {"n_trials": 1, "counters": {"rounds": 3}}
    b = {"n_trials": 1, "counters": {"rounds": 4}}
    write_telemetry(path, {"b": b, "a": a})
    payload = read_telemetry(path)
    assert list(payload["scenarios"]) == ["a", "b"]
    assert not list(tmp_path.glob("*.tmp*"))
    # Deterministic bytes: same sections -> same file.
    first = path.read_bytes()
    write_telemetry(path, {"a": a, "b": b})
    assert path.read_bytes() == first
