"""Differential tests: numpy multi-row kernel vs int kernel vs reference.

:class:`repro.gf2.batch.BatchRref` claims *zero* behavior change
against both the int-backed :class:`~repro.gf2.matrix.IncrementalRref`
and the original numpy-words implementation preserved in
``repro.gf2.reference`` — same residuals, same basis, same payload
algebra, and identical :class:`OpCounter` totals (the cost-model
contract the Figure-8 benches rely on).  These tests make the claim
executable three ways:

* hypothesis drives random insert / reduce / is_innovative sequences
  through all three kernels in lock-step;
* the block API (:meth:`batch_insert` / :meth:`batch_reduce`) is pinned
  equivalent to sequential calls, charges included;
* :func:`make_rref` heuristic selection is pinned (int kernel below
  :data:`BATCH_RREF_MIN_COLS`, numpy at or above, explicit overrides).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.counters import OpCounter
from repro.errors import DecodingError, DimensionError
from repro.gf2 import BATCH_RREF_MIN_COLS, BatchRref, IncrementalRref, make_rref
from repro.gf2.bitvec import BitVector
from repro.gf2.reference import ReferenceBitVector, ReferenceRref


def _triple(ncols, nbytes):
    counters = (OpCounter(), OpCounter(), OpCounter())
    return (
        IncrementalRref(ncols, payload_nbytes=nbytes, counter=counters[0]),
        BatchRref(ncols, payload_nbytes=nbytes, counter=counters[1]),
        ReferenceRref(ncols, payload_nbytes=nbytes, counter=counters[2]),
        counters,
    )


def _random_vec(rng, ncols):
    d = int(rng.integers(1, ncols + 1))
    cols = rng.choice(ncols, size=d, replace=False).tolist()
    return (
        BitVector.from_indices(ncols, cols),
        ReferenceBitVector.from_indices(ncols, cols),
    )


def _ref_int(ref_vec):
    return int.from_bytes(ref_vec.key(), "little")


# ----------------------------------------------------------------------
# Three-way op sequences
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    ncols=st.integers(1, 150),
    nbytes=st.sampled_from([None, 8]),
    seed=st.integers(0, 2**31),
    n_ops=st.integers(1, 80),
)
def test_op_sequences_match_int_and_reference(ncols, nbytes, seed, n_ops):
    rng = np.random.default_rng(seed)
    a, b, r, (ca, cb, cr) = _triple(ncols, nbytes)
    for _ in range(n_ops):
        vec, rvec = _random_vec(rng, ncols)
        payload = (
            rng.integers(0, 256, size=nbytes, dtype=np.uint8)
            if nbytes
            else None
        )
        op = int(rng.integers(0, 3))
        if op == 0:
            outs = {
                a.insert(vec, None if payload is None else payload.copy()),
                b.insert(vec, None if payload is None else payload.copy()),
                r.insert(rvec, None if payload is None else payload.copy()),
            }
            assert len(outs) == 1
        elif op == 1:
            xa, pa = a.reduce(vec, payload)
            xb, pb = b.reduce(vec, payload)
            xr, pr = r.reduce(rvec, payload)
            assert xa.key() == xb.key() == xr.key()
            if payload is not None:
                assert np.array_equal(pa, pb)
                assert np.array_equal(pa, pr)
        else:
            outs = {
                a.is_innovative(vec),
                b.is_innovative(vec),
                r.is_innovative(rvec),
            }
            assert len(outs) == 1
        assert a.rank == b.rank == r.rank
        assert a.pivot_columns() == b.pivot_columns()
        assert [v.key() for v in a.basis_rows()] == [
            v.key() for v in b.basis_rows()
        ]
        assert ca.counts == cb.counts, "numpy kernel drifted from int"
        assert ca.counts == cr.counts, "int kernel drifted from reference"
    if a.is_full_rank() and nbytes:
        assert all(
            np.array_equal(x, y) for x, y in zip(a.decode(), b.decode())
        )


def test_full_rank_decode_matches_int_kernel():
    ncols, nbytes = 96, 16
    rng = np.random.default_rng(5)
    a, b, _, (ca, cb, _) = _triple(ncols, nbytes)
    while not a.is_full_rank():
        vec, _rv = _random_vec(rng, ncols)
        payload = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
        assert a.insert(vec, payload.copy()) == b.insert(vec, payload.copy())
    assert b.is_full_rank()
    assert ca.counts == cb.counts
    for x, y in zip(a.decode(), b.decode()):
        assert np.array_equal(x, y)


# ----------------------------------------------------------------------
# Block API
# ----------------------------------------------------------------------
def test_batch_insert_equals_sequential_inserts():
    ncols, nbytes = 80, 12
    rng = np.random.default_rng(11)
    c_seq, c_blk = OpCounter(), OpCounter()
    seq = BatchRref(ncols, payload_nbytes=nbytes, counter=c_seq)
    blk = BatchRref(ncols, payload_nbytes=nbytes, counter=c_blk)
    vecs = [_random_vec(rng, ncols)[0] for _ in range(120)]
    pays = rng.integers(0, 256, size=(len(vecs), nbytes), dtype=np.uint8)
    res_seq = [seq.insert(v, p.copy()) for v, p in zip(vecs, pays)]
    res_blk = blk.batch_insert(vecs, pays)
    assert res_seq == res_blk
    assert c_seq.counts == c_blk.counts
    assert [v.key() for v in seq.basis_rows()] == [
        v.key() for v in blk.basis_rows()
    ]
    assert seq.pivot_columns() == blk.pivot_columns()


def test_batch_insert_accepts_word_matrix():
    ncols = 70
    rng = np.random.default_rng(13)
    vecs = [_random_vec(rng, ncols)[0] for _ in range(40)]
    nwords = (ncols + 63) >> 6
    matrix = np.stack(
        [
            np.frombuffer(v._x.to_bytes(nwords * 8, "little"), dtype=np.uint64)
            for v in vecs
        ]
    )
    a = BatchRref(ncols)
    b = BatchRref(ncols)
    assert a.batch_insert(vecs) == b.batch_insert(matrix)
    assert a.counter.counts == b.counter.counts
    assert [v.key() for v in a.basis_rows()] == [
        v.key() for v in b.basis_rows()
    ]


def test_batch_reduce_equals_sequential_reduce():
    ncols = 64
    rng = np.random.default_rng(17)
    c_seq, c_blk = OpCounter(), OpCounter()
    seq = BatchRref(ncols, counter=c_seq)
    blk = BatchRref(ncols, counter=c_blk)
    basis = [_random_vec(rng, ncols)[0] for _ in range(30)]
    for v in basis:
        seq.insert(v)
        blk.insert(v)
    c_seq.counts.clear()
    c_blk.counts.clear()
    probes = [_random_vec(rng, ncols)[0] for _ in range(25)]
    res_seq = [seq.reduce(v)[0].key() for v in probes]
    res_blk = [
        bytes(row.tobytes()) for row in blk.batch_reduce(probes)
    ]
    assert res_seq == res_blk
    assert c_seq.counts == c_blk.counts
    assert seq.rank == blk.rank  # reduce never mutates


# ----------------------------------------------------------------------
# make_rref heuristic + validation
# ----------------------------------------------------------------------
def test_make_rref_picks_kernel_by_code_length():
    assert isinstance(make_rref(BATCH_RREF_MIN_COLS - 1), IncrementalRref)
    assert isinstance(make_rref(BATCH_RREF_MIN_COLS), BatchRref)
    assert isinstance(make_rref(64, backend="numpy"), BatchRref)
    assert isinstance(make_rref(4096, backend="int"), IncrementalRref)
    with pytest.raises(DimensionError):
        make_rref(64, backend="gpu")


def test_make_rref_threads_payload_and_counter():
    counter = OpCounter()
    r = make_rref(2048, payload_nbytes=32, counter=counter, backend="numpy")
    assert r.counter is counter
    assert r.payload_nbytes == 32
    assert r.ncols == 2048


def test_batch_rref_validation():
    with pytest.raises(DimensionError):
        BatchRref(0)
    r = BatchRref(8, payload_nbytes=4)
    with pytest.raises(DimensionError):
        r.insert(BitVector.from_indices(9, [0]))
    with pytest.raises(DimensionError):
        r.insert(BitVector.from_indices(8, [0]), np.zeros(5, dtype=np.uint8))
    with pytest.raises(DimensionError):
        r.batch_insert(np.zeros((3, 7), dtype=np.uint64))
    with pytest.raises(DimensionError):
        r.batch_insert(
            [BitVector.from_indices(8, [0])], np.zeros((2, 4), dtype=np.uint8)
        )
    with pytest.raises(DecodingError):
        r.decode()
    sym = BatchRref(1)
    sym.insert(BitVector.from_indices(1, [0]))
    with pytest.raises(DecodingError):
        sym.decode()  # symbolic mode: no payloads
