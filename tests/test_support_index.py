"""Unit tests for the canonical low-degree support index."""

from repro.core.support_index import SupportIndex


def test_empty():
    idx = SupportIndex()
    assert not idx.has({1, 2})
    assert idx.pids({1, 2}) == frozenset()
    assert idx.indexed_count() == 0


def test_add_and_lookup_order_independent():
    idx = SupportIndex()
    idx.add(0, {3, 1})
    assert idx.has({1, 3})
    assert idx.has((3, 1))
    assert idx.pids([1, 3]) == {0}


def test_high_degree_not_indexed():
    idx = SupportIndex()
    idx.add(0, {1, 2, 3, 4})
    assert idx.indexed_count() == 0
    assert not idx.has({1, 2, 3, 4})
    idx.remove(0)  # must not raise


def test_update_reindexes_on_reduction():
    idx = SupportIndex()
    idx.add(0, {1, 2, 3, 4})  # too big: unindexed
    idx.update(0, {2, 3, 4})  # now degree 3: indexed
    assert idx.has({2, 3, 4})
    idx.update(0, {3, 4})
    assert not idx.has({2, 3, 4})
    assert idx.has({3, 4})


def test_parallel_packets_same_support():
    idx = SupportIndex()
    idx.add(0, {1, 2})
    idx.add(1, {2, 1})
    assert idx.pids({1, 2}) == {0, 1}
    idx.remove(0)
    assert idx.has({1, 2})
    idx.remove(1)
    assert not idx.has({1, 2})


def test_remove_unknown_is_ignored():
    idx = SupportIndex()
    idx.remove(42)
    assert idx.indexed_count() == 0
