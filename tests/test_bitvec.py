"""Unit and property tests for repro.gf2.bitvec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError
from repro.gf2 import BitVector


class TestConstruction:
    def test_zeros_has_no_bits(self):
        v = BitVector.zeros(100)
        assert v.weight() == 0
        assert v.is_zero()
        assert len(v) == 100

    def test_from_indices_sets_exactly_those_bits(self):
        v = BitVector.from_indices(70, [0, 63, 64, 69])
        assert v.get(0) and v.get(63) and v.get(64) and v.get(69)
        assert v.weight() == 4
        assert list(v.indices()) == [0, 63, 64, 69]

    def test_from_bits_round_trip(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        v = BitVector.from_bits(bits)
        assert [int(b) for b in v] == bits

    def test_duplicate_indices_idempotent(self):
        v = BitVector.from_indices(10, [3, 3, 3])
        assert v.weight() == 1

    def test_negative_length_rejected(self):
        with pytest.raises(DimensionError):
            BitVector(-1)

    def test_zero_length_vector(self):
        v = BitVector.zeros(0)
        assert v.weight() == 0
        assert v.is_zero()
        assert list(v.indices()) == []

    def test_word_shape_validated(self):
        with pytest.raises(DimensionError):
            BitVector(65, np.zeros(1, dtype=np.uint64))

    def test_tail_bits_masked_on_construction(self):
        # Junk beyond nbits must be cleared to preserve invariants.
        words = np.full(1, 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        v = BitVector(4, words)
        assert v.weight() == 4

    def test_random_density_extremes(self):
        rng = np.random.default_rng(0)
        assert BitVector.random(200, rng, density=0.0).is_zero()
        assert BitVector.random(200, rng, density=1.0).weight() == 200

    def test_random_density_validated(self):
        with pytest.raises(ValueError):
            BitVector.random(8, np.random.default_rng(0), density=1.5)


class TestElementAccess:
    def test_set_get_flip(self):
        v = BitVector.zeros(65)
        v.set(64)
        assert v.get(64)
        v.flip(64)
        assert not v.get(64)
        v.set(10, True)
        v.set(10, False)
        assert not v.get(10)

    def test_negative_index_wraps(self):
        v = BitVector.zeros(10)
        v.set(-1)
        assert v.get(9)

    def test_out_of_range_raises(self):
        v = BitVector.zeros(10)
        with pytest.raises(IndexError):
            v.get(10)
        with pytest.raises(IndexError):
            v.set(-11)

    def test_getitem_setitem(self):
        v = BitVector.zeros(8)
        v[3] = 1
        assert v[3]
        v[3] = 0
        assert not v[3]


class TestArithmetic:
    def test_xor_is_addition(self):
        a = BitVector.from_indices(10, [1, 2, 3])
        b = BitVector.from_indices(10, [3, 4])
        assert sorted(a.__xor__(b).indices()) == [1, 2, 4]

    def test_ixor_mutates_self_only(self):
        a = BitVector.from_indices(10, [1])
        b = BitVector.from_indices(10, [2])
        a.ixor(b)
        assert list(a.indices()) == [1, 2]
        assert list(b.indices()) == [2]

    def test_xor_length_mismatch_raises(self):
        with pytest.raises(DimensionError):
            BitVector.zeros(10).ixor(BitVector.zeros(11))

    def test_and_or_overlap(self):
        a = BitVector.from_indices(128, [0, 64, 100])
        b = BitVector.from_indices(128, [64, 100, 127])
        assert sorted((a & b).indices()) == [64, 100]
        assert sorted((a | b).indices()) == [0, 64, 100, 127]
        assert a.overlap(b) == 2

    def test_first_index(self):
        assert BitVector.zeros(100).first_index() == -1
        assert BitVector.from_indices(100, [65, 99]).first_index() == 65
        assert BitVector.from_indices(100, [0]).first_index() == 0


class TestEqualityHash:
    def test_eq_and_hash_agree(self):
        a = BitVector.from_indices(70, [1, 65])
        b = BitVector.from_indices(70, [1, 65])
        assert a == b and hash(a) == hash(b)
        b.flip(0)
        assert a != b

    def test_key_distinguishes_contents(self):
        a = BitVector.from_indices(70, [1])
        b = BitVector.from_indices(70, [2])
        assert a.key() != b.key()

    def test_eq_other_type(self):
        assert BitVector.zeros(3) != "not a vector"

    def test_copy_is_independent(self):
        a = BitVector.from_indices(10, [5])
        b = a.copy()
        b.flip(5)
        assert a.get(5) and not b.get(5)


# ----------------------------------------------------------------------
# Property-based tests: GF(2) vector-space laws
# ----------------------------------------------------------------------

vec_lengths = st.integers(min_value=1, max_value=300)


@st.composite
def bitvectors(draw, nbits=None):
    n = draw(vec_lengths) if nbits is None else nbits
    idx = draw(st.lists(st.integers(0, n - 1), max_size=n))
    return BitVector.from_indices(n, idx)


@st.composite
def bitvector_pairs(draw):
    n = draw(vec_lengths)
    return draw(bitvectors(nbits=n)), draw(bitvectors(nbits=n))


@st.composite
def bitvector_triples(draw):
    n = draw(vec_lengths)
    return tuple(draw(bitvectors(nbits=n)) for _ in range(3))


@settings(max_examples=80)
@given(bitvector_pairs())
def test_xor_commutative(pair):
    a, b = pair
    assert a.__xor__(b) == b.__xor__(a)


@settings(max_examples=80)
@given(bitvector_triples())
def test_xor_associative(triple):
    a, b, c = triple
    assert (a.__xor__(b)).__xor__(c) == a.__xor__(b.__xor__(c))


@settings(max_examples=80)
@given(bitvectors())
def test_xor_self_is_zero(v):
    assert v.__xor__(v).is_zero()


@settings(max_examples=80)
@given(bitvectors())
def test_zero_is_identity(v):
    zero = BitVector.zeros(len(v))
    assert v.__xor__(zero) == v


@settings(max_examples=80)
@given(bitvector_pairs())
def test_weight_triangle_inequality(pair):
    a, b = pair
    # |w(a) - w(b)| <= w(a ^ b) <= w(a) + w(b)
    w = a.__xor__(b).weight()
    assert abs(a.weight() - b.weight()) <= w <= a.weight() + b.weight()


@settings(max_examples=80)
@given(bitvectors())
def test_indices_weight_consistent(v):
    idx = v.indices()
    assert len(idx) == v.weight()
    assert all(v.get(int(i)) for i in idx)


@settings(max_examples=80)
@given(bitvector_pairs())
def test_xor_weight_via_overlap(pair):
    a, b = pair
    assert a.__xor__(b).weight() == a.weight() + b.weight() - 2 * a.overlap(b)


@settings(max_examples=50)
@given(bitvectors())
def test_tail_invariant_preserved(v):
    # After arbitrary ops the bits beyond nbits stay zero, so weight over
    # indices always matches weight over words.
    v2 = v.__xor__(v).__xor__(v)
    assert v2 == v
    assert v2.weight() == len(v2.indices())
