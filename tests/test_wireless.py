"""Tests for the wireless broadcast setting with snooping."""

import pytest

from repro.errors import SimulationError
from repro.gossip.wireless import (
    WirelessSimulator,
    WirelessTopology,
    _Snoop,
)


def test_topology_validation():
    with pytest.raises(SimulationError):
        WirelessTopology(1)
    with pytest.raises(SimulationError):
        WirelessTopology(8, radius=0.0)


def test_topology_connected_and_symmetric():
    topo = WirelessTopology(30, radius=0.2, rng=0)
    assert topo.is_connected()
    for i in range(30):
        for j in topo.neighbors(i):
            assert i in topo.neighbors(j)
            assert i != j


def test_topology_radius_grows_until_connected():
    # A tiny initial radius cannot connect 40 nodes; growth must kick in.
    topo = WirelessTopology(40, radius=0.01, rng=1)
    assert topo.is_connected()
    assert topo.radius > 0.01


def test_snoop_is_conservative():
    """Snooped state never claims knowledge the neighbour did not show."""
    snoop = _Snoop(8)
    snoop.observe({3})
    snoop.observe({1, 2})
    snoop.observe({2, 4})
    state = snoop.state()
    assert state.is_decoded(3)
    assert not state.is_decoded(1)
    assert state.ccr[1] == state.ccr[2] == state.ccr[4]
    assert state.ccr[1] != state.ccr[5]
    # High-degree packets carry no degree-<=2 information: ignored.
    snoop.observe({5, 6, 7})
    assert snoop.state().ccr[5] != snoop.state().ccr[6]


def test_snoop_skips_decoded_endpoints():
    snoop = _Snoop(4)
    snoop.observe({0})
    snoop.observe({0, 1})  # endpoint decoded: skipped, stays conservative
    assert not snoop.state().is_decoded(1)


@pytest.mark.parametrize("scheme", ["ltnc", "rlnc"])
def test_wireless_dissemination_converges(scheme):
    topo = WirelessTopology(12, radius=0.35, rng=2)
    sim = WirelessSimulator(scheme, topo, 24, seed=3, max_rounds=6000)
    result = sim.run()
    assert result.all_complete
    assert result.transmissions > 0
    # Broadcast advantage: each transmission reaches several hearers.
    assert result.broadcast_gain() > 1.0


def test_snooping_accelerates_ltnc():
    topo = WirelessTopology(16, radius=0.35, rng=4)
    rounds = {}
    usefulness = {}
    for snoop in (False, True):
        sim = WirelessSimulator(
            "ltnc",
            topo,
            32,
            snoop=snoop,
            seed=5,
            max_rounds=8000,
            node_kwargs={"aggressiveness": 0.01},
        )
        result = sim.run()
        assert result.all_complete
        rounds[snoop] = result.average_completion_round()
        usefulness[snoop] = result.usefulness()
    assert rounds[True] < rounds[False]
    assert usefulness[True] > usefulness[False]


def test_smart_targets_counted_only_when_snooping():
    topo = WirelessTopology(10, radius=0.4, rng=6)
    silent = WirelessSimulator("ltnc", topo, 16, snoop=False, seed=7,
                               max_rounds=4000)
    silent.run()
    assert silent.result.smart_targets == 0
    snooping = WirelessSimulator("ltnc", topo, 16, snoop=True, seed=7,
                                 max_rounds=4000)
    snooping.run()
    assert snooping.result.smart_targets > 0


def test_result_guards():
    from repro.gossip.wireless import WirelessResult

    result = WirelessResult("ltnc", 4, 8)
    with pytest.raises(SimulationError):
        result.average_completion_round()
    assert result.broadcast_gain() == 0.0
    assert result.usefulness() == 0.0
