"""Tests for the §III-B1 degree-reachability heuristics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.degree_index import DegreeIndex
from repro.core.reachability import ReachabilityOracle
from repro.costmodel.counters import OpCounter
from repro.lt.tanner import TannerGraph


def _setup(k, supports, decoded=()):
    """Build a graph + index holding the given supports and decoded natives."""
    counter = OpCounter()
    graph = TannerGraph(k, counter=counter)
    index = DegreeIndex(k, counter=counter)
    for i in decoded:
        graph.insert({i}, None)
        index.add_decoded(i)
    for support in supports:
        pid, newly = graph.insert(set(support), None)
        assert pid is not None and not newly, "test supports must store"
        index.add_packet(pid, len(support))
    return graph, index, ReachabilityOracle(index, graph, counter)


def test_paper_example_mass_bound():
    # {x1+x2+x3, x1+x3, x2+x5}: max reachable degree is 2*2 + 3 = 7.
    _, _, oracle = _setup(8, [{1, 2, 3}, {1, 3}, {2, 5}])
    assert oracle.is_unreachable(8)
    assert not oracle.is_unreachable(4)  # only 4 natives covered


def test_paper_example_coverage_bound():
    # Degree 5 impossible: only 4 distinct natives appear (§III-B1).
    _, _, oracle = _setup(8, [{1, 2, 3}, {1, 3}, {2, 5}])
    assert oracle.coverage(5) >= 4
    assert oracle.is_unreachable(5)


def test_paper_false_negative_examples():
    # The bounds deliberately do NOT discard these unreachable degrees.
    _, _, oracle = _setup(8, [{1, 2}, {3, 4}])
    assert not oracle.is_unreachable(3)  # actually unreachable, passes
    _, _, oracle = _setup(8, [{1, 2}, {2, 3}], decoded=[4])
    assert not oracle.is_unreachable(4)  # actually unreachable, passes


def test_degree_one_unreachable_without_decoded():
    _, _, oracle = _setup(8, [{1, 2}, {2, 3}])
    assert oracle.is_unreachable(1)


def test_degree_one_reachable_with_decoded():
    _, _, oracle = _setup(8, [], decoded=[3])
    assert not oracle.is_unreachable(1)


def test_nonpositive_degrees_unreachable():
    _, _, oracle = _setup(8, [{1, 2}])
    assert oracle.is_unreachable(0)
    assert oracle.is_unreachable(-3)


def test_coverage_counts_decoded_and_supports():
    _, _, oracle = _setup(8, [{1, 2}, {2, 3}], decoded=[5, 6])
    assert oracle.coverage(8) == 5  # {5,6} + {1,2,3}
    assert oracle.coverage(1) == 2  # decoded only


def test_max_reachable_simple_cases():
    _, _, oracle = _setup(8, [{1, 2}])
    assert oracle.max_reachable() == 2
    _, _, oracle = _setup(8, [], decoded=[0])
    assert oracle.max_reachable() == 1
    _, _, oracle = _setup(8, [])
    assert oracle.max_reachable() == 0


@settings(max_examples=50, deadline=None)
@given(
    k=st.integers(2, 12),
    supports=st.lists(
        st.sets(st.integers(0, 11), min_size=2, max_size=5), max_size=8
    ),
    decoded=st.sets(st.integers(0, 11), max_size=4),
    d=st.integers(1, 12),
)
def test_bounds_are_sound(k, supports, decoded, d):
    """Unreachable verdicts must be correct: no combination attains d.

    The bounds hold under the paper's premise that a degree-d packet is
    built only from decoded natives and packets of degree <= d (the
    no-collision assumption, matched by Algorithm 1), so the exhaustive
    ground truth enumerates subsets of exactly those items.
    """
    decoded = {x % k for x in decoded}
    supports = [
        {x % k for x in s} - decoded for s in supports
    ]
    supports = [s for s in supports if len(s) >= 2]
    if len(supports) > 6:
        supports = supports[:6]
    graph, index, oracle = _setup(k, supports, decoded=sorted(decoded))
    if not oracle.is_unreachable(d):
        return  # bound passed: nothing to verify (necessary, not sufficient)
    # Exhaustively XOR all subsets of degree <= d items; none may reach d.
    items = [frozenset(s) for s in supports if len(s) <= d] + [
        frozenset({x}) for x in decoded
    ]
    n = len(items)
    for mask in range(1, 1 << n):
        acc: set[int] = set()
        for j in range(n):
            if mask >> j & 1:
                acc ^= items[j]
        assert len(acc) != d, (
            f"oracle said degree {d} unreachable but subset {mask} attains it"
        )
