"""Property-based tests for scenario serialisation and the runner.

Two contracts:

* any :class:`ScenarioSpec` — however exotic — round-trips losslessly
  through its dict and JSON serialisations (hypothesis-generated);
* a :class:`TrialRunner` with ``n_workers=1`` produces bitwise-identical
  aggregated JSON to ``n_workers=4`` for the same master seed.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.content.spec import CatalogueSpec
from repro.gossip.channel import ChurnPhase
from repro.scenarios import (
    TOPOLOGY_PRESETS,
    ScenarioSpec,
    TrialRunner,
    get_preset,
)
from repro.schemes import get_scheme
from repro.topology.spec import TopologySpec
from repro.experiments.scale import PROFILES

_probability = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_-0123456789", min_size=1, max_size=16
)


@st.composite
def churn_phases(draw):
    start = draw(st.integers(min_value=0, max_value=500))
    length = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=500)))
    end = None if length is None else start + length
    return ChurnPhase(start=start, end=end, rate=draw(_probability))


@st.composite
def topology_specs(draw, n_nodes):
    graph = draw(
        st.sampled_from(["line", "ring", "grid2d", "edge_tree", "barabasi_albert"])
    )
    return TopologySpec(
        graph=graph,
        escape=draw(_probability),
        loss_mode=draw(st.sampled_from(["none", "hop", "weight"])),
        per_hop_loss=draw(_probability),
        root=draw(st.integers(min_value=0, max_value=n_nodes - 1)),
    )


@st.composite
def catalogue_specs(draw):
    n_contents = draw(st.integers(min_value=1, max_value=5))
    cache_policy = draw(st.sampled_from(["none", "lru", "lfu", "pin"]))
    pin_contents: tuple[str, ...] = ()
    if cache_policy == "pin":
        picks = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_contents - 1),
                min_size=1,
                max_size=n_contents,
                unique=True,
            )
        )
        pin_contents = tuple(f"c{i}" for i in sorted(picks))
    return CatalogueSpec(
        n_contents=n_contents,
        k=draw(st.integers(min_value=0, max_value=64)),
        generation_size=draw(st.integers(min_value=0, max_value=8)),
        demand=draw(st.sampled_from(["zipf", "uniform"])),
        zipf_s=draw(
            st.floats(
                min_value=0.0,
                max_value=3.0,
                allow_nan=False,
                allow_infinity=False,
            )
        ),
        interests_per_node=draw(st.integers(min_value=1, max_value=n_contents)),
        cache_policy=cache_policy,
        cache_fraction=draw(_probability),
        cache_capacity=(
            0
            if cache_policy == "none"
            else draw(st.integers(min_value=1, max_value=64))
        ),
        pin_contents=pin_contents,
        source_schedule=draw(st.sampled_from(["popularity", "round_robin"])),
    )


def _knob_values(knob):
    """A strategy of values satisfying one scheme knob's schema."""
    if knob.kind is bool:
        return st.booleans()
    if knob.kind is int:
        lo = int(knob.minimum) if knob.minimum is not None else 1
        if knob.exclusive_min:
            lo += 1
        hi = int(knob.maximum) if knob.maximum is not None else max(lo, 64)
        return st.integers(min_value=lo, max_value=hi)
    lo = knob.minimum if knob.minimum is not None else 0.0
    hi = knob.maximum if knob.maximum is not None else max(lo, 1.0)
    return st.floats(
        min_value=lo,
        max_value=hi,
        exclude_min=knob.exclusive_min,
        allow_nan=False,
        allow_infinity=False,
    )


@st.composite
def node_kwargs_for(draw, scheme):
    """Spec-valid node_kwargs drawn from the scheme's knob schema."""
    knobs = get_scheme(scheme).knobs
    if not knobs:
        return {}
    picks = draw(
        st.lists(
            st.sampled_from(knobs),
            unique_by=lambda knob: knob.name,
            max_size=3,
        )
    )
    return {knob.name: draw(_knob_values(knob)) for knob in picks}


@st.composite
def scenario_specs(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=64))
    node_loss = draw(
        st.one_of(
            st.just(()),
            st.tuples(*([_probability] * n_nodes)),
        )
    )
    content = draw(st.one_of(st.none(), catalogue_specs()))
    if content is not None:
        # Catalogue workloads: binary/none transport, no prewarm.
        feedback = draw(st.sampled_from(["none", "binary"]))
        warm_fraction, warm_packets = 0.0, 0
        scheme = "ltnc" if content.generation_size else draw(
            st.sampled_from(["wc", "rlnc", "ltnc", "rndlt"])
        )
    else:
        scheme = draw(st.sampled_from(["wc", "rlnc", "ltnc", "rndlt"]))
        feedbacks = ["none", "binary"]
        if get_scheme(scheme).supports_full_feedback:
            feedbacks.append("full")
        feedback = draw(st.sampled_from(feedbacks))
        warm_fraction = draw(_probability)
        warm_packets = draw(st.integers(min_value=0, max_value=128))
    return ScenarioSpec(
        name=draw(_names),
        scheme=scheme,
        n_nodes=n_nodes,
        k=draw(st.integers(min_value=1, max_value=256)),
        feedback=feedback,
        source_pushes=draw(st.integers(min_value=1, max_value=8)),
        n_sources=draw(st.integers(min_value=1, max_value=4)),
        max_rounds=draw(st.integers(min_value=1, max_value=10**6)),
        loss_rate=draw(_probability),
        duplicate_rate=draw(_probability),
        churn_rate=draw(_probability),
        node_loss=node_loss,
        churn_phases=tuple(
            draw(st.lists(churn_phases(), max_size=4))
        ),
        warm_fraction=warm_fraction,
        warm_packets=warm_packets,
        sampler=draw(st.sampled_from(["uniform", "view"])),
        view_size=draw(st.integers(min_value=1, max_value=32)),
        renewal_period=draw(st.integers(min_value=1, max_value=16)),
        topology=draw(st.one_of(st.none(), topology_specs(n_nodes))),
        content=content,
        node_kwargs=draw(node_kwargs_for(scheme)),
    )


@settings(max_examples=60, deadline=None)
@given(scenario_specs())
def test_spec_roundtrips_through_dict(spec):
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


@settings(max_examples=60, deadline=None)
@given(scenario_specs())
def test_spec_roundtrips_through_json(spec):
    rebuilt = ScenarioSpec.from_json(spec.to_json())
    assert rebuilt == spec
    # The dict form must itself be pure JSON (no tuples, no dataclasses).
    assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()


@settings(max_examples=40, deadline=None)
@given(scenario_specs(), scenario_specs())
def test_distinct_specs_serialise_distinctly(a, b):
    assert (a == b) == (a.to_json() == b.to_json())


def test_parallel_runner_bitwise_matches_serial():
    spec = ScenarioSpec(
        name="parallel-check",
        n_nodes=8,
        k=16,
        churn_rate=0.05,
        loss_rate=0.1,
        node_kwargs={"aggressiveness": 0.01},
    )
    serial = TrialRunner(n_workers=1).run(spec, 4, master_seed=7)
    parallel = TrialRunner(n_workers=4).run(spec, 4, master_seed=7)
    assert serial.to_json() == parallel.to_json()


def test_parallel_grid_bitwise_matches_serial_on_preset():
    spec = get_preset("churn", PROFILES["quick"])
    serial = TrialRunner(n_workers=1).run_grid([spec], 4, master_seed=7)
    parallel = TrialRunner(n_workers=4).run_grid([spec], 4, master_seed=7)
    assert serial["churn"].to_json() == parallel["churn"].to_json()


@pytest.mark.parametrize("name", TOPOLOGY_PRESETS)
def test_topology_presets_are_worker_count_invariant(name):
    # The graph is grown inside each worker from the trial seed; the
    # aggregated JSON must stay byte-identical for any worker count.
    spec = get_preset(name, PROFILES["quick"])
    serial = TrialRunner(n_workers=1).run(spec, 4, master_seed=7)
    parallel = TrialRunner(n_workers=4).run(spec, 4, master_seed=7)
    assert serial.to_json() == parallel.to_json()
