"""Tests for the Raptor substrate (precoded LT codes, [26])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.packet import make_content
from repro.errors import DimensionError, DistributionError
from repro.lt.decoder import BeliefPropagationDecoder
from repro.lt.raptor import (
    Precode,
    RaptorDecoder,
    RaptorDistribution,
    RaptorEncoder,
)


def test_distribution_validation():
    with pytest.raises(DistributionError):
        RaptorDistribution(0)
    with pytest.raises(DistributionError):
        RaptorDistribution(16, eps=0)


def test_distribution_is_capped():
    dist = RaptorDistribution(512, eps=0.1)
    assert dist.max_degree() <= dist.d_max + 1
    assert dist.d_max == int(np.ceil(4 * 1.1 / 0.1))
    # No Robust-Soliton spike: the pmf body is monotone decreasing.
    body = dist.pmf[2 : dist.d_max + 1]
    assert np.all(np.diff(body) <= 1e-12)


def test_distribution_tiny_k():
    dist = RaptorDistribution(1)
    assert dist.probability(1) == 1.0


def test_precode_validation():
    with pytest.raises(DimensionError):
        Precode(0)
    with pytest.raises(DimensionError):
        Precode(8, expansion=-0.1)
    with pytest.raises(DimensionError):
        Precode(8, parity_degree=0)


def test_precode_extend_parities():
    k, m = 16, 4
    content = make_content(k, m, rng=0)
    precode = Precode(k, expansion=0.25, parity_degree=3, rng=1)
    block = precode.extend(content)
    assert block.shape == (precode.n_intermediate, m)
    for j, support in enumerate(precode.parity_supports):
        expected = np.zeros(m, dtype=np.uint8)
        for i in support:
            expected ^= content[int(i)]
        assert np.array_equal(block[k + j], expected)


def test_constraints_are_zero_payload_packets():
    precode = Precode(16, expansion=0.25, parity_degree=3, rng=2)
    packets = precode.constraints(payload_nbytes=4)
    assert len(packets) == precode.p
    for j, packet in enumerate(packets):
        assert packet.degree == 4  # parity_degree + the parity symbol
        assert 16 + j in packet.support()
        assert not packet.payload.any()


def test_end_to_end_data_recovery():
    k, m = 64, 8
    content = make_content(k, m, rng=3)
    encoder = RaptorEncoder(k, content, rng=4)
    decoder = encoder.decoder()
    budget = 20 * k
    while not decoder.is_complete() and budget:
        decoder.receive(encoder.next_packet())
        budget -= 1
    assert decoder.is_complete()
    assert np.array_equal(decoder.recovered_content(), content)


def test_recovered_content_requires_completion():
    encoder = RaptorEncoder(16, make_content(16, 4, rng=5), rng=6)
    decoder = encoder.decoder()
    with pytest.raises(DimensionError):
        decoder.recovered_content()


def test_distribution_k_mismatch_rejected():
    with pytest.raises(DimensionError):
        RaptorEncoder(32, distribution=RaptorDistribution(32), rng=7)
        # distribution must cover k + p intermediate symbols, not k


def test_constraints_strictly_help():
    """Pre-seeded parity constraints never delay data completion."""
    k = 48
    encoder = RaptorEncoder(k, rng=8)
    with_constraints = encoder.decoder()
    without = BeliefPropagationDecoder(encoder.n_intermediate)
    done_with = done_without = None
    for received in range(1, 25 * k):
        packet = encoder.next_packet()
        with_constraints.receive(packet.copy())
        without.receive(packet)
        data_without = sum(
            1 for i in range(k) if without.is_decoded(i)
        )
        if done_with is None and with_constraints.is_complete():
            done_with = received
        if done_without is None and data_without == k:
            done_without = received
        if done_with is not None and done_without is not None:
            break
    assert done_with is not None
    assert done_without is None or done_with <= done_without


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(8, 48),
    expansion=st.floats(0.0, 0.4),
    seed=st.integers(0, 2**16),
)
def test_raptor_roundtrip_property(k, expansion, seed):
    m = 4
    content = make_content(k, m, rng=seed)
    encoder = RaptorEncoder(
        k, content, expansion=expansion, rng=seed + 1
    )
    decoder = encoder.decoder()
    budget = 40 * k
    while not decoder.is_complete() and budget:
        decoder.receive(encoder.next_packet())
        budget -= 1
    assert decoder.is_complete()
    assert np.array_equal(decoder.recovered_content(), content)
