"""Tests for the sharded trial fleet: planning, checkpoints, resume.

The contracts under test (ISSUE 6):

* shard-count invariance — 1 shard, 4 shards and the serial
  ``TrialRunner`` serialise to byte-identical JSON, for 1 and 4
  workers;
* checkpoint → kill → resume produces JSON byte-identical to an
  uninterrupted run, without re-running checkpointed shards;
* ``ScenarioAggregate.metrics_summary`` summarises the union of metric
  keys across heterogeneous shards, not just trial 0's keys;
* ``write_json`` / checkpoint writes are atomic — a crash mid-write
  never leaves a truncated file a resume would trust;
* ``parallel_map`` re-raises ``KeyboardInterrupt`` instead of leaving
  orphaned workers, and its chunked dispatch is size-aware.
"""

import json
import os

import pytest

from repro.errors import SimulationError
from repro.scenarios import (
    CheckpointStore,
    FleetRunner,
    FleetStop,
    ScenarioAggregate,
    ScenarioSpec,
    TrialRunner,
    atomic_write_text,
    default_chunksize,
    grid_fingerprint,
    parallel_map,
    plan_shards,
)
from repro.scenarios import fleet as fleet_module

SPEC = ScenarioSpec(name="fleet-x", n_nodes=8, k=16, loss_rate=0.1)
OTHER = ScenarioSpec(name="fleet-y", n_nodes=8, k=16)


def _interruptible(item: int) -> int:
    """Module-level (picklable) worker fn that simulates Ctrl-C."""
    if item == 3:
        raise KeyboardInterrupt
    return item * 2


# -- shard planning ------------------------------------------------------
def test_plan_shards_partitions_balanced_and_disjoint():
    shards = plan_shards([SPEC, OTHER], 10, master_seed=7, n_shards=4)
    assert len(shards) == 8  # 4 per scenario
    for scenario in (SPEC, OTHER):
        mine = [s for s in shards if s.scenario is scenario]
        covered = [i for s in mine for i in s.trial_indices]
        assert covered == list(range(10))
        sizes = [len(s.trial_indices) for s in mine]
        assert max(sizes) - min(sizes) <= 1
        assert [s.shard_index for s in mine] == [0, 1, 2, 3]


def test_plan_shards_caps_at_trial_count():
    shards = plan_shards([SPEC], 2, master_seed=0, n_shards=8)
    assert len(shards) == 2
    assert all(len(s.trial_indices) == 1 for s in shards)


def test_plan_shards_validates():
    with pytest.raises(SimulationError):
        plan_shards([SPEC], 0, 0, 1)
    with pytest.raises(SimulationError):
        plan_shards([SPEC], 1, 0, 0)
    with pytest.raises(SimulationError):
        plan_shards([SPEC, SPEC], 1, 0, 1)


def test_shard_trials_match_runner_seed_tree():
    shards = plan_shards([SPEC], 6, master_seed=9, n_shards=2)
    grid = TrialRunner(1).trials_for(SPEC, 6, 9)
    fleet_trials = [t for s in shards for t in s.trials()]
    assert fleet_trials == grid


def test_grid_fingerprint_is_order_insensitive_but_shape_sensitive():
    base = grid_fingerprint([SPEC, OTHER], 4, 7, 2)
    assert grid_fingerprint([OTHER, SPEC], 4, 7, 2) == base
    assert grid_fingerprint([SPEC, OTHER], 5, 7, 2) != base
    assert grid_fingerprint([SPEC, OTHER], 4, 8, 2) != base
    assert grid_fingerprint([SPEC, OTHER], 4, 7, 3) != base
    assert grid_fingerprint([SPEC], 4, 7, 2) != base


# -- chunked dispatch ----------------------------------------------------
def test_default_chunksize_is_size_aware():
    assert default_chunksize(1, 4) == 1
    assert default_chunksize(4, 4) == 1  # small grids still spread out
    assert default_chunksize(100, 4) == 7  # ~4 chunks per worker
    assert default_chunksize(10_000, 4) == 32  # capped
    assert default_chunksize(0, 4) == 1


def test_parallel_map_rejects_bad_chunksize():
    with pytest.raises(SimulationError):
        parallel_map(abs, [1, 2], n_workers=1, chunksize=0)


def test_parallel_map_chunked_preserves_order():
    items = list(range(23))
    assert parallel_map(_interruptible, [0, 1, 2], n_workers=2) == [0, 2, 4]
    assert (
        parallel_map(abs, items, n_workers=3, chunksize=5)
        == parallel_map(abs, items, n_workers=1)
        == items
    )


def test_parallel_map_reraises_keyboard_interrupt_serial_and_pooled():
    with pytest.raises(KeyboardInterrupt):
        parallel_map(_interruptible, [1, 2, 3, 4], n_workers=1)
    with pytest.raises(KeyboardInterrupt):
        parallel_map(_interruptible, [1, 2, 3, 4, 5, 6], n_workers=2)


# -- aggregation bugfixes ------------------------------------------------
def test_metrics_summary_unions_heterogeneous_keys():
    # A metric present only in later trials (e.g. per-content keys
    # after merging heterogeneous shards) must still be summarised.
    agg = ScenarioAggregate(SPEC, 0)
    agg.add_record({"trial_index": 0, "seed": 10, "rounds": 4})
    agg.add_record(
        {"trial_index": 1, "seed": 11, "rounds": 6, "content:a:rounds": 8}
    )
    summary = agg.metrics_summary()
    assert set(summary) == {"rounds", "content:a:rounds"}
    assert summary["rounds"]["n"] == 2
    assert summary["content:a:rounds"] == {
        "n": 1, "mean": 8.0, "ci95": 0.0, "min": 8.0, "max": 8.0,
    }
    # First-seen order over index-sorted trials, regardless of
    # insertion order.
    flipped = ScenarioAggregate(SPEC, 0)
    flipped.add_record(
        {"trial_index": 1, "seed": 11, "rounds": 6, "content:a:rounds": 8}
    )
    flipped.add_record({"trial_index": 0, "seed": 10, "rounds": 4})
    assert list(flipped.metrics_summary()) == ["rounds", "content:a:rounds"]
    assert flipped.to_json() == agg.to_json()


def test_merge_with_heterogeneous_metric_keys_across_shards():
    first = ScenarioAggregate(SPEC, 0)
    second = ScenarioAggregate(SPEC, 0)
    # Shard 2's trials carry a key shard 1 never saw; after the merge
    # re-sorts, that key must survive into the JSON metrics block.
    second.add_record(
        {"trial_index": 2, "seed": 12, "rounds": 5, "cache_hit_ratio": 0.5}
    )
    first.add_record({"trial_index": 0, "seed": 10, "rounds": 4})
    first.add_record({"trial_index": 1, "seed": 11, "rounds": 6})
    first.merge(second)
    payload = json.loads(first.to_json())
    assert "cache_hit_ratio" in payload["metrics"]
    assert payload["metrics"]["cache_hit_ratio"]["n"] == 1
    assert [t["trial_index"] for t in payload["trials"]] == [0, 1, 2]


def test_add_record_requires_identity_keys():
    agg = ScenarioAggregate(SPEC, 0)
    with pytest.raises(SimulationError):
        agg.add_record({"rounds": 4})


def test_write_json_is_atomic(tmp_path, monkeypatch):
    agg = ScenarioAggregate(SPEC, 0)
    agg.add_record({"trial_index": 0, "seed": 10, "rounds": 4})
    path = tmp_path / "agg.json"
    agg.write_json(path)
    good = path.read_text()
    assert json.loads(good)["n_trials"] == 1
    # No temp droppings after a clean write.
    assert [p.name for p in tmp_path.iterdir()] == ["agg.json"]

    # Crash during the final rename: the original file must survive
    # intact and the temp file must be cleaned up.
    def boom(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", boom)
    agg.add_record({"trial_index": 1, "seed": 11, "rounds": 9})
    with pytest.raises(OSError):
        agg.write_json(path)
    monkeypatch.undo()
    assert path.read_text() == good
    assert [p.name for p in tmp_path.iterdir()] == ["agg.json"]


def test_atomic_write_text_creates_parents(tmp_path):
    target = tmp_path / "a" / "b" / "out.txt"
    assert atomic_write_text(target, "hi\n") == target
    assert target.read_text() == "hi\n"


# -- checkpoint store ----------------------------------------------------
def _one_shard(n_trials=4, n_shards=2):
    shards = plan_shards([SPEC], n_trials, master_seed=7, n_shards=n_shards)
    fp = grid_fingerprint([SPEC], n_trials, 7, n_shards)
    return shards, fp


def test_checkpoint_roundtrip_and_paranoia(tmp_path):
    shards, fp = _one_shard()
    store = CheckpointStore(tmp_path)
    records = [
        {"trial_index": i, "seed": 100 + i, "rounds": 3.5}
        for i in shards[0].trial_indices
    ]
    path = store.save(shards[0], fp, records)
    assert path.exists()
    assert store.load(shards[0], fp) == records
    # Wrong fingerprint (different grid) is never replayed.
    assert store.load(shards[0], "0" * 64) is None
    # Absent shard.
    assert store.load(shards[1], fp) is None
    # Truncated/corrupt file is recomputed, not trusted.
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    assert store.load(shards[0], fp) is None


def test_checkpoint_rejects_tampered_trial_indices(tmp_path):
    shards, fp = _one_shard()
    store = CheckpointStore(tmp_path)
    records = [
        {"trial_index": i, "seed": 100 + i} for i in shards[0].trial_indices
    ]
    path = store.save(shards[0], fp, records)
    payload = json.loads(path.read_text())
    payload["trials"] = payload["trials"][:-1]
    path.write_text(json.dumps(payload))
    assert store.load(shards[0], fp) is None


def test_checkpoint_filenames_are_filesystem_safe(tmp_path):
    weird = SPEC.with_(name="baseline[ltnc/η]")
    shard = plan_shards([weird], 2, 0, 1)[0]
    path = CheckpointStore(tmp_path).path_for(shard)
    assert "/" not in path.name and "[" not in path.name
    assert path.parent == tmp_path


# -- fleet runner --------------------------------------------------------
def test_fleet_runner_validates_arguments(tmp_path):
    with pytest.raises(SimulationError):
        FleetRunner(0)
    with pytest.raises(SimulationError):
        FleetRunner(1, n_shards=0)
    with pytest.raises(SimulationError):
        FleetRunner(1, stop_after_shards=0)
    with pytest.raises(SimulationError):
        FleetRunner(1, resume=True)  # resume needs a checkpoint dir
    FleetRunner(1, resume=True, checkpoint_dir=tmp_path)


@pytest.mark.parametrize("n_workers", [1, 4])
def test_shard_count_invariance_matches_serial(n_workers):
    # 1 shard == 4 shards == serial TrialRunner, byte for byte — the
    # shard-level extension of the workers-1==4 property tests.
    serial = TrialRunner(1).run(SPEC, 4, master_seed=7).to_json()
    for n_shards in (1, 4):
        fleet = FleetRunner(n_workers=n_workers, n_shards=n_shards)
        assert fleet.run(SPEC, 4, master_seed=7).to_json() == serial


def test_fleet_grid_matches_trial_runner_grid():
    serial = TrialRunner(1).run_grid([SPEC, OTHER], 3, master_seed=5)
    fleet = FleetRunner(n_workers=2, n_shards=3).run_grid(
        [SPEC, OTHER], 3, master_seed=5
    )
    assert list(fleet) == list(serial) == ["fleet-x", "fleet-y"]
    for name in serial:
        assert fleet[name].to_json() == serial[name].to_json()


def test_stop_resume_is_byte_identical_to_uninterrupted(tmp_path):
    golden = TrialRunner(1).run_grid([SPEC, OTHER], 4, master_seed=7)
    with pytest.raises(FleetStop) as excinfo:
        FleetRunner(
            n_workers=1,
            n_shards=2,
            checkpoint_dir=tmp_path,
            stop_after_shards=1,
        ).run_grid([SPEC, OTHER], 4, master_seed=7)
    assert excinfo.value.completed_shards == 1
    assert excinfo.value.total_shards == 4
    # One shard checkpointed (progress.json rides along separately).
    assert len(list(tmp_path.glob("shard-*.json"))) == 1
    for n_workers in (1, 4):
        resumed = FleetRunner(
            n_workers=n_workers,
            n_shards=2,
            checkpoint_dir=tmp_path,
            resume=True,
        ).run_grid([SPEC, OTHER], 4, master_seed=7)
        for name in golden:
            assert resumed[name].to_json() == golden[name].to_json()


def test_resume_does_not_rerun_checkpointed_shards(tmp_path, monkeypatch):
    with pytest.raises(FleetStop):
        FleetRunner(
            1, n_shards=4, checkpoint_dir=tmp_path, stop_after_shards=2
        ).run(SPEC, 4, master_seed=7)
    done = {
        json.loads(p.read_text())["trial_indices"][0]
        for p in tmp_path.glob("shard-*.json")
    }
    assert len(done) == 2

    def refuse_rerun(trial):
        if trial.trial_index in done:
            raise AssertionError(
                f"re-ran checkpointed trial {trial.trial_index}"
            )
        return SPEC.run(trial.seed)

    monkeypatch.setattr(fleet_module, "run_trial", refuse_rerun)
    resumed = FleetRunner(
        1, n_shards=4, checkpoint_dir=tmp_path, resume=True
    ).run(SPEC, 4, master_seed=7)
    assert resumed.to_json() == TrialRunner(1).run(SPEC, 4, 7).to_json()


def test_resume_recomputes_when_grid_changed(tmp_path):
    with pytest.raises(FleetStop):
        FleetRunner(
            1, n_shards=4, checkpoint_dir=tmp_path, stop_after_shards=1
        ).run(SPEC, 4, master_seed=7)
    # Same checkpoint dir, different master seed: stale checkpoints are
    # ignored and the run is still correct.
    resumed = FleetRunner(
        1, n_shards=4, checkpoint_dir=tmp_path, resume=True
    ).run(SPEC, 4, master_seed=8)
    assert resumed.to_json() == TrialRunner(1).run(SPEC, 4, 8).to_json()


def test_stop_after_only_counts_executed_shards(tmp_path):
    # A resume that replays 2 checkpoints and may execute 2 more shards
    # completes a 4-shard grid without stopping again.
    with pytest.raises(FleetStop):
        FleetRunner(
            1, n_shards=4, checkpoint_dir=tmp_path, stop_after_shards=2
        ).run(SPEC, 4, master_seed=7)
    resumed = FleetRunner(
        1,
        n_shards=4,
        checkpoint_dir=tmp_path,
        resume=True,
        stop_after_shards=2,
    ).run(SPEC, 4, master_seed=7)
    assert resumed.to_json() == TrialRunner(1).run(SPEC, 4, 7).to_json()


# -- CLI ------------------------------------------------------------------
def test_cli_checkpoint_stop_resume_roundtrip(tmp_path, capsys):
    from repro.scenarios.__main__ import main

    base = [
        "--scenario", "baseline", "--trials", "4", "--seed", "7",
        "--scale", "quick",
    ]
    assert main(base) == 0
    golden = capsys.readouterr().out

    ckpt = str(tmp_path / "ckpt")
    fleet = base + ["--shards", "2", "--checkpoint-dir", ckpt]
    assert main(fleet + ["--stop-after-shards", "1"]) == 3
    captured = capsys.readouterr()
    assert "stopped after 1/2 shards" in captured.err
    assert len(list((tmp_path / "ckpt").glob("shard-*.json"))) == 1

    assert main(fleet + ["--resume"]) == 0
    assert capsys.readouterr().out == golden


@pytest.mark.parametrize(
    "argv, fragment",
    [
        (["--shards", "0"], "--shards must be >= 1"),
        (["--stop-after-shards", "0"], "--stop-after-shards must be >= 1"),
        (["--resume"], "--resume requires --checkpoint-dir"),
        (
            ["--stop-after-shards", "1"],
            "--stop-after-shards requires --checkpoint-dir",
        ),
    ],
)
def test_cli_rejects_bad_fleet_arguments(capsys, argv, fragment):
    from repro.scenarios.__main__ import main

    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert fragment in err
    assert "Traceback" not in err
