"""Unit tests for the repro.experiments.perfbench harness."""

from __future__ import annotations

import json

import pytest

from repro.experiments.perfbench import (
    SCHEMA_VERSION,
    bench_bitvector_ops,
    bench_decode,
    bench_end_to_end,
    bench_fleet,
    bench_phases,
    bench_rref_insert_reduce,
    main,
    run_perfbench,
    validate_bench,
)


def test_microbench_units_report_positive_rates():
    rref = bench_rref_insert_reduce(32, 50, seed=1)
    assert rref["n_ops"] == 50 and rref["ops_per_sec"] > 0
    vec = bench_bitvector_ops(32, 500, seed=1)
    assert vec["ixor_per_sec"] > 0 and vec["indices_per_sec"] > 0
    dec = bench_decode(16, 1, seed=1)
    assert dec["gauss_packets"] >= 16 and dec["bp_packets"] >= 16
    assert dec["gauss_packets_per_sec"] > 0 and dec["bp_packets_per_sec"] > 0


def test_fast_and_reference_kernels_do_identical_work():
    # Same seed -> same vector stream -> the op counts agree; only the
    # wall-clock rate may differ.  Guards against benching the two
    # kernels on accidentally different workloads.
    fast = bench_rref_insert_reduce(24, 40, seed=9, kernel="fast")
    ref = bench_rref_insert_reduce(24, 40, seed=9, kernel="reference")
    assert fast["n_ops"] == ref["n_ops"] == 40


def test_end_to_end_bench_completes_scenario():
    entry = bench_end_to_end("rlnc", n_nodes=6, k=8, seed=5)
    assert entry["all_complete"]
    assert entry["rounds"] >= 1 and entry["rounds_per_sec"] > 0


def test_phase_bench_reports_breakdown():
    entry = bench_phases("ltnc", n_nodes=6, k=8, seed=5)
    assert entry["all_complete"]
    table = entry["phases"]
    assert table["encode"]["calls"] > 0 and table["decode"]["calls"] > 0
    assert table["refine"]["calls"] > 0  # LTNC's Algorithm-2 slice
    assert all(cell["seconds"] >= 0 for cell in table.values())
    # refine is a subset of encode, excluded from the measured slice.
    assert entry["measured_seconds"] <= entry["seconds"] + 1e-6
    # The profiled workload is the bench_end_to_end workload: identical
    # seed and sizes, hence the identical simulated trajectory.
    assert entry["rounds"] == bench_end_to_end("ltnc", 6, 8, seed=5)["rounds"]


def test_fleet_bench_reports_throughput():
    entry = bench_fleet(
        n_trials=6, n_nodes=6, k=8, seed=5, n_workers=1, n_shards=3
    )
    assert entry["n_trials"] == 6 and entry["n_shards"] == 3
    assert entry["trials_per_sec"] > 0
    assert entry["completed_fraction"] == 1.0
    # v4: the fleet row carries the workload's deterministic counters.
    telemetry = entry["telemetry"]
    assert telemetry["n_trials"] == 6
    assert telemetry["counters"]["rounds"] > 0
    assert telemetry["counters"]["completed_nodes"] == 6 * 6


def test_fleet_bench_telemetry_counters_are_deterministic():
    # Unlike the rates, the telemetry half of the fleet row is pure
    # workload: re-running with a different worker split must reproduce
    # it bit-for-bit.
    a = bench_fleet(n_trials=4, n_nodes=6, k=8, seed=5, n_workers=1, n_shards=2)
    b = bench_fleet(n_trials=4, n_nodes=6, k=8, seed=5, n_workers=2, n_shards=4)
    assert a["telemetry"] == b["telemetry"]


def test_run_perfbench_quick_schema_and_validation(tmp_path):
    report = run_perfbench(
        profile="quick", seed=7, ks=(16, 32), schemes=("wc", "rlnc")
    )
    validate_bench(report)
    assert report["schema_version"] == SCHEMA_VERSION == 5
    assert set(report["end_to_end"]) == {"wc", "rlnc"}
    assert set(report["phases"]) == {"wc", "rlnc", "ltnc_batched"}
    entry = report["microbench"]["rref_insert_reduce"]["k=32"]
    assert {"ops_per_sec", "baseline_ops_per_sec", "speedup_vs_baseline"} <= set(
        entry
    )
    # v5: scalar-vs-batched N-scaling rows and the numpy-kernel bench.
    for label, row in report["n_scaling"].items():
        assert row["batched"]["rounds_per_sec"] > 0, label
        assert row["speedup_batched_vs_scalar"] > 0, label
        assert row["scalar"]["rounds"] == row["batched"]["rounds"], label
    for label, row in report["microbench"]["kernel_batch"].items():
        assert row["numpy_ops_per_sec"] > 0, label
        assert row["int_ops_per_sec"] > 0, label
        assert row["block_ops_per_sec"] > 0, label
    # Round-trips through JSON (the artifact contract).
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(report))
    validate_bench(json.loads(path.read_text()))


def test_validate_bench_rejects_broken_reports():
    report = run_perfbench(
        profile="quick",
        seed=7,
        ks=(16,),
        schemes=("wc",),
        include_baseline=False,
    )
    validate_bench(report)
    broken = json.loads(json.dumps(report))
    broken["microbench"]["rref_insert_reduce"]["k=16"]["ops_per_sec"] = 0
    with pytest.raises(ValueError, match="ops_per_sec not positive"):
        validate_bench(broken)
    missing = json.loads(json.dumps(report))
    del missing["end_to_end"]
    with pytest.raises(ValueError, match="end_to_end"):
        validate_bench(missing)
    no_fleet = json.loads(json.dumps(report))
    del no_fleet["fleet"]
    with pytest.raises(ValueError, match="fleet section missing"):
        validate_bench(no_fleet)
    slow_fleet = json.loads(json.dumps(report))
    slow_fleet["fleet"]["trials_per_sec"] = 0
    with pytest.raises(ValueError, match="fleet.trials_per_sec"):
        validate_bench(slow_fleet)
    no_phases = json.loads(json.dumps(report))
    del no_phases["phases"]
    with pytest.raises(ValueError, match="phases section missing"):
        validate_bench(no_phases)
    cold_phases = json.loads(json.dumps(report))
    cold_phases["phases"]["wc"]["phases"].pop("decode")
    with pytest.raises(ValueError, match=r"phases\[wc\].phases.decode"):
        validate_bench(cold_phases)
    rewound = json.loads(json.dumps(report))
    rewound["phases"]["wc"]["phases"]["encode"]["seconds"] = -0.1
    with pytest.raises(ValueError, match="negative phase time"):
        validate_bench(rewound)
    no_telemetry = json.loads(json.dumps(report))
    del no_telemetry["fleet"]["telemetry"]
    with pytest.raises(ValueError, match="fleet.telemetry section missing"):
        validate_bench(no_telemetry)
    short_telemetry = json.loads(json.dumps(report))
    short_telemetry["fleet"]["telemetry"]["n_trials"] -= 1
    with pytest.raises(ValueError, match="does not cover the grid"):
        validate_bench(short_telemetry)
    bad_counter = json.loads(json.dumps(report))
    bad_counter["fleet"]["telemetry"]["counters"]["rounds"] = -1
    with pytest.raises(ValueError, match="negative/non-int"):
        validate_bench(bad_counter)
    no_scaling = json.loads(json.dumps(report))
    del no_scaling["n_scaling"]
    with pytest.raises(ValueError, match="n_scaling section missing"):
        validate_bench(no_scaling)
    slow_batch = json.loads(json.dumps(report))
    next(iter(slow_batch["n_scaling"].values()))["batched"][
        "rounds_per_sec"
    ] = 0
    with pytest.raises(ValueError, match="batched.rounds_per_sec"):
        validate_bench(slow_batch)
    no_batched_phases = json.loads(json.dumps(report))
    del no_batched_phases["phases"]["ltnc_batched"]
    with pytest.raises(ValueError, match="ltnc_batched missing"):
        validate_bench(no_batched_phases)
    with pytest.raises(ValueError, match="unknown profile"):
        run_perfbench(profile="nope")


def test_validate_bench_accepts_v4_history_reports():
    # The checked-in trajectory predates v5; those files must keep
    # validating without the v5-only sections.
    report = run_perfbench(
        profile="quick",
        seed=7,
        ks=(16,),
        schemes=("wc",),
        include_baseline=False,
    )
    v4 = json.loads(json.dumps(report))
    v4["schema_version"] = 4
    del v4["n_scaling"]
    del v4["microbench"]["kernel_batch"]
    del v4["phases"]["ltnc_batched"]
    validate_bench(v4)
    v3 = json.loads(json.dumps(v4))
    v3["schema_version"] = 3
    with pytest.raises(ValueError, match="schema_version"):
        validate_bench(v3)


def test_cli_writes_validated_json(tmp_path, capsys):
    out = tmp_path / "BENCH_test.json"
    history = tmp_path / "history"
    assert (
        main(
            [
                "--quick",
                "--seed",
                "3",
                "--out",
                str(out),
                "--history-dir",
                str(history),
            ]
        )
        == 0
    )
    data = json.loads(out.read_text())
    validate_bench(data)
    assert data["profile"] == "quick"
    assert "rref k=64" in capsys.readouterr().out
    copies = list(history.glob("bench-*.json"))
    assert len(copies) == 1
    assert json.loads(copies[0].read_text()) == data
