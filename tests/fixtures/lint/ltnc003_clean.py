"""LTNC003 clean twin: reads are fine; writes go through the atomic helper."""

import json
import pathlib

from repro.scenarios.aggregate import atomic_write_text


def load(path):
    with open(path) as fh:
        return json.load(fh)


def save(payload, path):
    atomic_write_text(
        pathlib.Path(path), json.dumps(payload, sort_keys=True) + "\n"
    )
