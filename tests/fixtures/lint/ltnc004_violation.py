"""LTNC004 fixture: observability code reaching into measured subsystems."""

from repro.costmodel import OpCounter
from repro.rng import make_rng


def sample_cost(seed):
    counter = OpCounter()
    rng = make_rng(seed)
    return counter, rng.random()
