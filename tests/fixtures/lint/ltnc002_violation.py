"""LTNC002 fixture: wall-clock reads in determinism-critical code."""

import datetime
import time


def stamp():
    return time.time(), datetime.datetime.now()
