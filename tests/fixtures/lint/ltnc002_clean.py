"""LTNC002 clean twin: monotonic clocks only, wall-clock suppressed."""

import time


def elapsed(start):
    return time.perf_counter() - start


def host_stamp():
    # ltnc: allow[LTNC002] host-side display stamp, never read back
    return time.time()
