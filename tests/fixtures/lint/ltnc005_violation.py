"""LTNC005 fixture: scattered os.environ reads outside the config gateway."""

import os


def scale_name():
    return os.environ.get("LTNC_SCALE", "default"), os.getenv("LTNC_DEBUG")
