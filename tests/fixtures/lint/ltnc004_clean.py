"""LTNC004 clean twin: obs code observes — it never touches rng or counters."""

import time


def span(label, records):
    start = time.perf_counter()
    records.append((label, start))
    return start
