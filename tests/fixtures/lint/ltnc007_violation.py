"""LTNC007 fixture: insertion-ordered JSON serialisation."""

import json


def render(payload):
    return json.dumps(payload)


def render_compact(payload):
    return json.dumps(payload, separators=(",", ":"), sort_keys=False)
