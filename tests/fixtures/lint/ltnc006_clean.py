"""LTNC006 clean twin: module-level constants that are not schema markers."""

DEFAULT_TIMEOUT = 30.0
PROG_NAME = "fixture"


def payload():
    return {"timeout": DEFAULT_TIMEOUT, "prog": PROG_NAME}
