"""LTNC007 clean twin: canonical key order, or an explicit pass-through."""

import json


def render(payload):
    return json.dumps(payload, sort_keys=True, indent=2)


def render_with(payload, **kwargs):
    # Forwarded kwargs own the key-order decision; statically unknowable.
    return json.dumps(payload, **kwargs)
