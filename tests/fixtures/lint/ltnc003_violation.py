"""LTNC003 fixture: bare artifact writes instead of atomic_write_text."""

import json
import pathlib


def save(payload, path):
    with open(path, "w") as fh:
        json.dump(payload, fh)
    pathlib.Path(path).with_suffix(".txt").write_text("done")
