"""LTNC001 fixture: direct randomness construction in src code."""

import random

import numpy as np


def pick(items):
    rng = np.random.default_rng(0)
    return items[rng.integers(len(items))], random.choice(items)
