"""LTNC005 clean twin: environment reads only via the repro.config gateway."""

from repro.config import env_str


def scale_name():
    return env_str("LTNC_SCALE", "default")
