"""LTNC001 clean twin: randomness only via the repro.rng derive tree."""

import numpy as np

from repro.rng import derive, make_rng


def pick(items, seed):
    rng = make_rng(seed)
    child = derive(seed, "pick")
    return items[rng.integers(len(items))], child


def annotate(rng: np.random.Generator) -> np.random.Generator:
    # A type annotation naming numpy.random is not a construction site.
    return rng
