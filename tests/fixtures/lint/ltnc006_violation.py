"""LTNC006 fixture: schema constants not declared in the central registry."""

WIDGET_FORMAT = "ltnc-widget"
WIDGET_VERSION = 3


def payload():
    return {"format": WIDGET_FORMAT, "version": WIDGET_VERSION}
