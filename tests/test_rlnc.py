"""Tests for the RLNC baseline."""

import math

import numpy as np
import pytest

from repro.coding import EncodedPacket, make_content
from repro.errors import DecodingError, DimensionError, RecodingError
from repro.rlnc import RlncNode, default_sparsity


class TestSparsity:
    def test_paper_formula(self):
        assert default_sparsity(2048) == math.ceil(math.log(2048) + 20)

    def test_monotone_in_k(self):
        assert default_sparsity(4096) >= default_sparsity(512) >= default_sparsity(64)

    def test_small_k_safe(self):
        assert default_sparsity(1) >= 1


class TestNodeBasics:
    def test_validation(self):
        with pytest.raises(DimensionError):
            RlncNode(0, 0)
        with pytest.raises(DimensionError):
            RlncNode(0, 4, sparsity=0)

    def test_cannot_send_before_reception(self):
        node = RlncNode(0, 8)
        assert not node.can_send()
        with pytest.raises(RecodingError):
            node.make_packet()

    def test_receive_tracks_innovation(self):
        node = RlncNode(0, 4)
        assert node.receive(EncodedPacket.native(4, 0))
        assert not node.receive(EncodedPacket.native(4, 0))
        assert node.innovative_count == 1
        assert node.redundant_count == 1

    def test_header_check_matches_receive(self):
        node = RlncNode(0, 4)
        p = EncodedPacket.combine(4, [0, 1])
        assert node.header_is_innovative(p.vector)
        node.receive(p)
        assert not node.header_is_innovative(p.vector)
        # x0^x1 received: x0^x1^x2 is still innovative
        assert node.header_is_innovative(
            EncodedPacket.combine(4, [0, 1, 2]).vector
        )


class TestSourceAndDecode:
    def test_source_is_complete(self):
        content = make_content(8, 4, rng=0)
        src = RlncNode.as_source(8, content)
        assert src.is_complete() and src.can_send()
        assert np.array_equal(src.decoded_content(), content)

    def test_source_symbolic(self):
        src = RlncNode.as_source(8)
        assert src.is_complete()
        with pytest.raises(DecodingError):
            src.decoded_content()

    def test_end_to_end_decode_via_recoded_packets(self):
        k, m = 16, 8
        content = make_content(k, m, rng=1)
        src = RlncNode.as_source(k, content, rng=1)
        sink = RlncNode(1, k, payload_nbytes=m, rng=2)
        guard = 0
        while not sink.is_complete():
            sink.receive(src.make_packet())
            guard += 1
            assert guard < 40 * k, "RLNC sink failed to reach full rank"
        assert np.array_equal(sink.decoded_content(), content)

    def test_multi_hop_recoding_preserves_content(self):
        """Relay chain: source -> relay -> sink, all packets recoded."""
        k, m = 12, 4
        content = make_content(k, m, rng=3)
        src = RlncNode.as_source(k, content, rng=3)
        relay = RlncNode(1, k, payload_nbytes=m, rng=4)
        sink = RlncNode(2, k, payload_nbytes=m, rng=5)
        guard = 0
        while not sink.is_complete():
            relay.receive(src.make_packet())
            if relay.can_send():
                sink.receive(relay.make_packet())
            guard += 1
            assert guard < 100 * k
        assert np.array_equal(sink.decoded_content(), content)


class TestRecoding:
    def test_recode_combines_at_most_sparsity(self):
        k = 32
        src = RlncNode.as_source(k, rng=0, sparsity=5)
        # Degree of a combination of <= 5 natives is <= 5.
        for _ in range(50):
            assert src.make_packet().degree <= 5

    def test_recoded_packet_in_span(self):
        k = 8
        node = RlncNode(0, k, rng=7)
        node.receive(EncodedPacket.combine(k, [0, 1]))
        node.receive(EncodedPacket.combine(k, [1, 2]))
        for _ in range(20):
            pkt = node.make_packet()
            assert not pkt.vector.is_zero()
            assert node.rref.contains(pkt.vector)

    def test_recode_counts_data_ops(self):
        node = RlncNode.as_source(16, rng=0)
        node.make_packet()
        assert node.recode_counter.get("payload_xor") >= 1

    def test_single_packet_forwarding(self):
        node = RlncNode(0, 4, rng=0)
        node.receive(EncodedPacket.combine(4, [0, 1]))
        pkt = node.make_packet()
        assert pkt.support() == {0, 1}

    def test_decode_cost_grows_superlinearly(self):
        """Gauss decoding control cost must scale ~k^2 row ops (Fig. 8b)."""

        def decode_ops(k):
            content = make_content(k, 2, rng=k)
            src = RlncNode.as_source(k, content, rng=k)
            sink = RlncNode(1, k, payload_nbytes=2, rng=k + 1)
            while not sink.is_complete():
                sink.receive(src.make_packet())
            return sink.decode_counter.get("gauss_row_xor")

        small, large = decode_ops(16), decode_ops(64)
        # 4x k should be at least ~8x the row operations (quadratic-ish).
        assert large > 6 * small
