"""CLI argument guards for the experiment sweep drivers.

The sweeps share the runner knobs of ``python -m repro.scenarios`` and
must reject bad values with argparse's short error message — never a
traceback — via :mod:`repro.experiments.cliutil`.  Parametrised over
both drivers so a future sweep copying the helper inherits the
contract.
"""

import pytest

from repro.experiments import content_compare, scheme_compare, topo_compare

DRIVERS = {
    "topo_compare": topo_compare.main,
    "content_compare": content_compare.main,
    "scheme_compare": scheme_compare.main,
}

BAD_ARGS = [
    (["--workers", "0"], "--workers must be >= 1"),
    (["--workers", "-2"], "--workers must be >= 1"),
    (["--trials", "0"], "--trials must be >= 1"),
    (["--trials", "-3"], "--trials must be >= 1"),
    (["--scale", "nope"], "unknown scale 'nope'"),
    (["--shards", "0"], "--shards must be >= 1"),
    (["--stop-after-shards", "0"], "--stop-after-shards must be >= 1"),
    (["--resume"], "--resume requires --checkpoint-dir"),
    (
        ["--stop-after-shards", "2"],
        "--stop-after-shards requires --checkpoint-dir",
    ),
    (
        ["--trace-detail", "session"],
        "--trace-detail requires --trace-dir",
    ),
    (["--trace-dir", "x", "--trace-detail", "packet"], "invalid choice"),
    (["--trace-compress"], "--trace-compress requires --trace-dir"),
]


@pytest.mark.parametrize("driver", sorted(DRIVERS))
@pytest.mark.parametrize("argv, fragment", BAD_ARGS)
def test_sweep_cli_rejects_bad_arguments(capsys, driver, argv, fragment):
    with pytest.raises(SystemExit) as excinfo:
        DRIVERS[driver](argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert fragment in err
    assert "Traceback" not in err


@pytest.mark.parametrize("driver", sorted(DRIVERS))
def test_sweep_cli_rejects_bad_ltnc_scale_env(capsys, driver, monkeypatch):
    # An invalid LTNC_SCALE environment surfaces as a parser error too.
    monkeypatch.setenv("LTNC_SCALE", "huge")
    with pytest.raises(SystemExit) as excinfo:
        DRIVERS[driver]([])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "LTNC_SCALE" in err
    assert "Traceback" not in err


def test_scheme_compare_rejects_unknown_scheme(capsys):
    with pytest.raises(SystemExit) as excinfo:
        scheme_compare.main(["--schemes", "nope"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown scheme 'nope'" in err
    assert "Traceback" not in err


@pytest.mark.parametrize("driver", sorted(DRIVERS))
def test_sweep_cli_checkpoint_stop_and_resume(
    capsys, driver, tmp_path, monkeypatch
):
    # Every sweep driver supports the fleet flags: stopping early exits
    # with status 3 and leaves checkpoints; resuming completes and
    # prints the same table as an uninterrupted run.
    monkeypatch.setenv("LTNC_SCALE", "quick")
    base = ["--trials", "2", "--seed", "7"]
    if driver == "scheme_compare":
        base += ["--schemes", "wc", "rlnc"]
    assert DRIVERS[driver](base) == 0
    golden = capsys.readouterr().out

    ckpt = str(tmp_path / driver)
    fleet = base + ["--shards", "2", "--checkpoint-dir", ckpt]
    assert DRIVERS[driver](fleet + ["--stop-after-shards", "1"]) == 3
    captured = capsys.readouterr()
    assert "rerun with --resume" in captured.err
    assert len(list((tmp_path / driver).glob("shard-*.json"))) == 1

    assert DRIVERS[driver](fleet + ["--resume"]) == 0
    assert capsys.readouterr().out == golden


def test_sweep_cli_tracing_and_progress_leave_table_unchanged(
    capsys, tmp_path, monkeypatch
):
    # Observability flags are free: the traced + progress run prints
    # the same table, and drops its artifacts where asked.
    monkeypatch.setenv("LTNC_SCALE", "quick")
    base = ["--trials", "2", "--seed", "7", "--schemes", "wc"]
    assert scheme_compare.main(base) == 0
    golden = capsys.readouterr().out

    traces = tmp_path / "traces"
    ckpt = tmp_path / "ckpt"
    observed = base + [
        "--trace-dir", str(traces),
        "--progress",
        "--checkpoint-dir", str(ckpt),
    ]
    assert scheme_compare.main(observed) == 0
    captured = capsys.readouterr()
    assert captured.out == golden
    assert "trials/s" in captured.err  # the live progress lines
    assert len(list(traces.glob("trace-*.jsonl"))) == 2  # one per trial
    import json

    payload = json.loads((ckpt / "progress.json").read_text())
    assert payload["shards_done"] == payload["shards_total"]

    from repro.experiments import tracestats

    argv = [str(p) for p in sorted(traces.glob("trace-*.jsonl"))]
    assert tracestats.main(["--validate"] + argv) == 0


def test_sweep_cli_telemetry_and_compressed_traces(
    capsys, tmp_path, monkeypatch
):
    # --telemetry-dir and --trace-compress are free too: same table,
    # plus a validating telemetry.json and .jsonl.gz traces.
    monkeypatch.setenv("LTNC_SCALE", "quick")
    base = ["--trials", "2", "--seed", "7", "--schemes", "wc"]
    assert scheme_compare.main(base) == 0
    golden = capsys.readouterr().out

    traces = tmp_path / "traces"
    telemetry = tmp_path / "telemetry"
    observed = base + [
        "--trace-dir", str(traces),
        "--trace-compress",
        "--telemetry-dir", str(telemetry),
    ]
    assert scheme_compare.main(observed) == 0
    assert capsys.readouterr().out == golden
    assert len(list(traces.glob("trace-*.jsonl.gz"))) == 2

    from repro.experiments import tracestats
    from repro.obs.telemetry import read_telemetry, validate_telemetry

    payload = read_telemetry(telemetry / "telemetry.json")
    validate_telemetry(payload)
    assert all(
        section["n_trials"] == 2
        for section in payload["scenarios"].values()
    )
    argv = [str(p) for p in sorted(traces.glob("trace-*.jsonl.gz"))]
    assert tracestats.main(
        ["--validate", "--telemetry", str(telemetry / "telemetry.json")]
        + argv
    ) == 0
