"""CLI argument guards for the experiment sweep drivers.

The sweeps share the runner knobs of ``python -m repro.scenarios`` and
must reject bad values with argparse's short error message — never a
traceback — via :mod:`repro.experiments.cliutil`.  Parametrised over
both drivers so a future sweep copying the helper inherits the
contract.
"""

import pytest

from repro.experiments import content_compare, scheme_compare, topo_compare

DRIVERS = {
    "topo_compare": topo_compare.main,
    "content_compare": content_compare.main,
    "scheme_compare": scheme_compare.main,
}

BAD_ARGS = [
    (["--workers", "0"], "--workers must be >= 1"),
    (["--workers", "-2"], "--workers must be >= 1"),
    (["--trials", "0"], "--trials must be >= 1"),
    (["--trials", "-3"], "--trials must be >= 1"),
    (["--scale", "nope"], "unknown scale 'nope'"),
]


@pytest.mark.parametrize("driver", sorted(DRIVERS))
@pytest.mark.parametrize("argv, fragment", BAD_ARGS)
def test_sweep_cli_rejects_bad_arguments(capsys, driver, argv, fragment):
    with pytest.raises(SystemExit) as excinfo:
        DRIVERS[driver](argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert fragment in err
    assert "Traceback" not in err


@pytest.mark.parametrize("driver", sorted(DRIVERS))
def test_sweep_cli_rejects_bad_ltnc_scale_env(capsys, driver, monkeypatch):
    # An invalid LTNC_SCALE environment surfaces as a parser error too.
    monkeypatch.setenv("LTNC_SCALE", "huge")
    with pytest.raises(SystemExit) as excinfo:
        DRIVERS[driver]([])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "LTNC_SCALE" in err
    assert "Traceback" not in err


def test_scheme_compare_rejects_unknown_scheme(capsys):
    with pytest.raises(SystemExit) as excinfo:
        scheme_compare.main(["--schemes", "nope"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "unknown scheme 'nope'" in err
    assert "Traceback" not in err
