"""Tests for deterministic RNG helpers."""

import numpy as np

from repro.rng import derive, make_rng, spawn, stream


class TestMakeRng:
    def test_from_int_deterministic(self):
        assert make_rng(5).integers(0, 1000) == make_rng(5).integers(0, 1000)

    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDerive:
    def test_same_path_same_stream(self):
        a = derive(1, "fig7", 3).integers(0, 10**9)
        b = derive(1, "fig7", 3).integers(0, 10**9)
        assert a == b

    def test_different_paths_differ(self):
        draws = {
            int(derive(1, label, i).integers(0, 10**9))
            for label in ("a", "b", "c")
            for i in range(5)
        }
        assert len(draws) == 15  # all distinct with overwhelming probability

    def test_string_hash_stable_across_calls(self):
        # Guards against use of salted hash(): same process or not,
        # the derivation must be stable.
        assert (
            derive(9, "convergence").integers(0, 10**9)
            == derive(9, "convergence").integers(0, 10**9)
        )


class TestSpawnStream:
    def test_spawn_children_independent(self):
        children = spawn(make_rng(2), 4)
        assert len(children) == 4
        vals = {int(c.integers(0, 10**9)) for c in children}
        assert len(vals) == 4

    def test_stream_reproducible(self):
        it1, it2 = stream(7, "mc"), stream(7, "mc")
        for _ in range(3):
            assert next(it1).integers(0, 10**9) == next(it2).integers(0, 10**9)
