"""Tests for Algorithm 4 — smart packet construction (§III-C2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import ConnectedComponents
from repro.core.feedback import (
    FeedbackState,
    find_innovative_native,
    find_innovative_pair,
)
from repro.errors import DimensionError


def _components(k, edges=(), decoded=()):
    cc = ConnectedComponents(k)
    for x in decoded:
        cc.mark_decoded(x)
    for pid, (a, b) in enumerate(edges):
        cc.add_edge(pid, a, b)
    return cc


def test_feedback_state_snapshot():
    cc = _components(4, decoded=[1])
    state = FeedbackState.of(cc)
    assert state.k == 4
    assert state.is_decoded(1)
    assert not state.is_decoded(0)
    # Snapshot is frozen: later receiver progress is not reflected.
    cc.mark_decoded(0)
    assert not state.is_decoded(0)


def test_k_mismatch_raises():
    sender = _components(4)
    receiver = FeedbackState(np.zeros(5, dtype=np.int64))
    rng = np.random.default_rng(0)
    with pytest.raises(DimensionError):
        find_innovative_native(sender, receiver, rng)
    with pytest.raises(DimensionError):
        find_innovative_pair(sender, receiver, rng)


def test_native_found_when_receiver_lacks_it():
    sender = _components(6, decoded=[0, 3])
    receiver = FeedbackState.of(_components(6, decoded=[0]))
    rng = np.random.default_rng(1)
    assert find_innovative_native(sender, receiver, rng) == 3


def test_native_none_when_receiver_has_all():
    sender = _components(6, decoded=[0, 3])
    receiver = FeedbackState.of(_components(6, decoded=[0, 3, 5]))
    rng = np.random.default_rng(2)
    assert find_innovative_native(sender, receiver, rng) is None


def test_native_none_when_sender_decoded_nothing():
    sender = _components(6)
    receiver = FeedbackState.of(_components(6))
    rng = np.random.default_rng(3)
    assert find_innovative_native(sender, receiver, rng) is None


def test_pair_paper_figure6():
    """Fig. 6: sender component {x2,x4,x6} vs receiver {x2,x6},{x3,x4}.

    (0-indexed.)  The sender's component overlaps two receiver
    components, so an innovative pair must be found, and it must
    straddle the receiver split.
    """
    sender = _components(7, edges=[(2, 4), (4, 6)], decoded=[5])
    receiver = FeedbackState.of(
        _components(7, edges=[(0, 4), (0, 6), (1, 3)], decoded=[5])
    )
    rng = np.random.default_rng(4)
    pair = find_innovative_pair(sender, receiver, rng)
    assert pair is not None
    x, y = pair
    assert sender.same(x, y)
    assert receiver.ccr[x] != receiver.ccr[y]


def test_pair_none_when_consistent():
    """Sender components each inside one receiver component -> no pair."""
    sender = _components(6, edges=[(0, 1)])
    receiver = FeedbackState.of(
        _components(6, edges=[(0, 1), (1, 2)])
    )
    rng = np.random.default_rng(5)
    assert find_innovative_pair(sender, receiver, rng) is None


def test_pair_from_sender_decoded_class():
    """Two sender-decoded natives undecoded and split at the receiver."""
    sender = _components(6, decoded=[0, 1, 2])
    receiver = FeedbackState.of(_components(6, edges=[(0, 1)]))
    rng = np.random.default_rng(6)
    pair = find_innovative_pair(sender, receiver, rng)
    assert pair is not None
    x, y = pair
    assert sender.same(x, y)
    assert receiver.ccr[x] != receiver.ccr[y]


@settings(max_examples=60, deadline=None)
@given(
    k=st.integers(2, 12),
    sender_edges=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=14
    ),
    receiver_edges=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=14
    ),
    sender_decoded=st.sets(st.integers(0, 11), max_size=4),
    receiver_decoded=st.sets(st.integers(0, 11), max_size=4),
    seed=st.integers(0, 2**16),
)
def test_pair_verdicts_are_exact(
    k, sender_edges, receiver_edges, sender_decoded, receiver_decoded, seed
):
    """Found pairs are sender-buildable and receiver-innovative; a None
    verdict means no such pair exists (exhaustively checked)."""

    def build(edges, decoded):
        cc = ConnectedComponents(k)
        for x in {d % k for d in decoded}:
            cc.mark_decoded(x)
        pid = 0
        for a, b in edges:
            a, b = a % k, b % k
            if a == b or cc.is_decoded(a) or cc.is_decoded(b):
                continue
            cc.add_edge(pid, a, b)
            pid += 1
        return cc

    sender = build(sender_edges, sender_decoded)
    receiver_cc = build(receiver_edges, receiver_decoded)
    receiver = FeedbackState.of(receiver_cc)
    rng = np.random.default_rng(seed)
    pair = find_innovative_pair(sender, receiver, rng)
    exists = any(
        sender.cc[x] == sender.cc[y] and receiver.ccr[x] != receiver.ccr[y]
        for x in range(k)
        for y in range(x + 1, k)
    )
    if pair is None:
        assert not exists
    else:
        x, y = pair
        assert x != y
        assert sender.cc[x] == sender.cc[y]
        assert receiver.ccr[x] != receiver.ccr[y]
