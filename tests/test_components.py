"""Unit + property tests for connected components (core/components.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import DECODED_LEADER, ConnectedComponents
from repro.errors import DimensionError, RecodingError


def test_initial_state_singletons():
    cc = ConnectedComponents(5)
    assert cc.component_count() == 5
    for x in range(5):
        assert cc.component_of(x) == {x}
        assert not cc.is_decoded(x)
    assert cc.decoded_count() == 0


def test_add_edge_merges():
    cc = ConnectedComponents(6)
    cc.add_edge(pid=0, x=1, y=3)
    assert cc.same(1, 3)
    assert not cc.same(1, 2)
    assert cc.component_of(1) == {1, 3}
    assert cc.component_count() == 5
    cc.check_invariants()


def test_merge_chains_transitively():
    # Paper Fig. 5: {x2,x4} and {x3,x5,x7} merge on receiving x3+x4.
    cc = ConnectedComponents(8)
    cc.add_edge(0, 2, 4)
    cc.add_edge(1, 3, 5)
    cc.add_edge(2, 5, 7)
    cc.add_edge(3, 3, 4)  # the merging edge
    assert cc.component_of(2) == {2, 3, 4, 5, 7}
    assert cc.same(2, 7)
    cc.check_invariants()


def test_cycle_edge_keeps_partition():
    cc = ConnectedComponents(4)
    cc.add_edge(0, 0, 1)
    cc.add_edge(1, 1, 2)
    before = cc.component_of(0)
    cc.add_edge(2, 0, 2)  # closes a cycle
    assert cc.component_of(0) == before
    cc.check_invariants()


def test_remove_cycle_edge_preserves_connectivity():
    cc = ConnectedComponents(4)
    cc.add_edge(0, 0, 1)
    cc.add_edge(1, 1, 2)
    cc.add_edge(2, 0, 2)
    cc.remove_edge(2)
    assert cc.same(0, 2)
    cc.check_invariants()


def test_remove_unknown_pid_is_ignored():
    cc = ConnectedComponents(4)
    cc.remove_edge(99)  # packets of degree >= 3 also emit removals
    cc.check_invariants()


def test_duplicate_edge_pid_rejected():
    cc = ConnectedComponents(4)
    cc.add_edge(0, 0, 1)
    with pytest.raises(DimensionError):
        cc.add_edge(0, 2, 3)


def test_edge_to_decoded_rejected():
    cc = ConnectedComponents(4)
    cc.mark_decoded(1)
    with pytest.raises(DimensionError):
        cc.add_edge(0, 0, 1)


def test_mark_decoded_moves_to_leader_zero():
    cc = ConnectedComponents(4)
    cc.mark_decoded(2)
    assert cc.is_decoded(2)
    assert cc.leader(2) == DECODED_LEADER
    assert cc.members(DECODED_LEADER) == {2}
    assert 2 not in cc.component_of(0)
    cc.mark_decoded(2)  # idempotent
    assert cc.decoded_count() == 1


def test_decoded_pair_is_same():
    cc = ConnectedComponents(4)
    cc.mark_decoded(0)
    cc.mark_decoded(3)
    assert cc.same(0, 3)  # both leader 0: x0 ^ x3 buildable from values


def test_labels_returns_copy():
    cc = ConnectedComponents(4)
    labels = cc.labels()
    labels[0] = 42
    assert cc.leader(0) != 42


def test_path_pids_single_edge():
    cc = ConnectedComponents(4)
    cc.add_edge(7, 0, 1)
    assert cc.path_pids(0, 1) == [7]
    assert cc.path_pids(0, 0) == []


def test_path_pids_telescopes():
    # Paper §III-A: x3 ~ x7 via x3+x5 (y4) and x5+x7 (y6).
    cc = ConnectedComponents(8)
    cc.add_edge(4, 3, 5)
    cc.add_edge(6, 5, 7)
    path = cc.path_pids(3, 7)
    assert path == [4, 6]


def test_path_pids_raises_across_components():
    cc = ConnectedComponents(4)
    cc.add_edge(0, 0, 1)
    with pytest.raises(RecodingError):
        cc.path_pids(0, 3)


def test_path_prefers_any_simple_path_in_multigraph():
    cc = ConnectedComponents(3)
    cc.add_edge(0, 0, 1)
    cc.add_edge(1, 0, 1)  # parallel edge
    path = cc.path_pids(0, 1)
    assert len(path) == 1 and path[0] in (0, 1)


@settings(max_examples=60, deadline=None)
@given(
    k=st.integers(2, 24),
    edges=st.lists(
        st.tuples(st.integers(0, 23), st.integers(0, 23)), max_size=40
    ),
)
def test_labels_match_graph_connectivity(k, edges):
    """cc(x) == cc(y) must coincide with reachability over added edges."""
    cc = ConnectedComponents(k)
    added = []
    for pid, (a, b) in enumerate(edges):
        a, b = a % k, b % k
        if a == b:
            continue
        cc.add_edge(pid, a, b)
        added.append((a, b))
    cc.check_invariants()
    # Independent union-find ground truth.
    parent = list(range(k))

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for a, b in added:
        parent[find(a)] = find(b)
    for x in range(k):
        for y in range(k):
            assert cc.same(x, y) == (find(x) == find(y))


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(2, 16),
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=1,
        max_size=30,
    ),
    seed=st.integers(0, 2**16),
)
def test_path_pids_connect_equivalent_pairs(k, edges, seed):
    """Any same-component undecoded pair must yield a valid pid path."""
    cc = ConnectedComponents(k)
    endpoint_of = {}
    for pid, (a, b) in enumerate(edges):
        a, b = a % k, b % k
        if a == b:
            continue
        cc.add_edge(pid, a, b)
        endpoint_of[pid] = (a, b)
    rng = np.random.default_rng(seed)
    xs = rng.integers(0, k, size=8)
    ys = rng.integers(0, k, size=8)
    for x, y in zip(xs, ys):
        x, y = int(x), int(y)
        if not cc.same(x, y) or x == y:
            continue
        path = cc.path_pids(x, y)
        # XOR of the edge endpoints telescopes to {x, y}.
        acc: set[int] = set()
        for pid in path:
            acc ^= set(endpoint_of[pid])
        assert acc == {x, y}
