"""Unit tests for the mergeable telemetry primitives (repro.obs).

Covers :mod:`repro.obs.metrics` (fixed-boundary histograms, the
collector, exact merges) and :mod:`repro.obs.spans` (nestable named
timers over a tracer) in isolation; the end-to-end runner/fleet
telemetry contracts live in ``tests/test_telemetry.py``.
"""

import pytest

from repro.errors import SimulationError
from repro.obs import (
    DEFAULT_BOUNDARIES,
    Histogram,
    JsonlTracer,
    MetricsCollector,
    SpanRecorder,
    read_trace,
)


# -- Histogram -----------------------------------------------------------
def test_histogram_buckets_values_by_boundary():
    h = Histogram((10, 20, 50))
    for value in (5, 10, 15, 20, 100):
        h.observe(value)
    # bucket i holds values <= boundaries[i]; the last is the overflow.
    assert h.counts == [2, 2, 0, 1]
    assert h.count == 5 and h.sum == 150
    assert h.min == 5 and h.max == 100


def test_histogram_rejects_bad_boundaries_and_counts():
    with pytest.raises(SimulationError, match="strictly increasing"):
        Histogram((10, 10, 20))
    with pytest.raises(SimulationError, match="at least one boundary"):
        Histogram(())
    h = Histogram((1, 2))
    with pytest.raises(SimulationError, match="must be >= 1"):
        h.observe(3, n=0)


def test_histogram_merge_is_exact_and_boundary_checked():
    a, b = Histogram((10, 20)), Histogram((10, 20))
    a.observe(5)
    b.observe(15)
    b.observe(100, n=3)
    a.merge(b)
    assert a.counts == [1, 1, 3]
    assert a.count == 5 and a.sum == 320
    assert a.min == 5 and a.max == 100
    with pytest.raises(SimulationError, match="boundaries"):
        a.merge(Histogram((10, 30)))


def test_histogram_dict_roundtrip():
    h = Histogram((10, 20))
    h.observe(7, n=2)
    clone = Histogram.from_dict(h.to_dict())
    assert clone.to_dict() == h.to_dict()
    bad = h.to_dict()
    bad["counts"] = [1]  # wrong arity for the boundaries
    with pytest.raises(SimulationError, match="counts"):
        Histogram.from_dict(bad)


# -- MetricsCollector ----------------------------------------------------
def test_collector_counts_gauges_and_histograms():
    m = MetricsCollector()
    assert not m
    m.label("kind", "epidemic")
    m.count("rounds", 3)
    m.count("rounds", 2)
    m.gauge("completed_fraction", 0.5)
    m.gauge("completed_fraction", 1.0)
    m.observe("completion_round", 12)
    assert m
    snap = m.snapshot()
    assert snap["labels"] == {"kind": "epidemic"}
    assert snap["counters"] == {"rounds": 5}
    gauge = snap["gauges"]["completed_fraction"]
    assert gauge["last"] == 1.0 and gauge["min"] == 0.5
    assert gauge["max"] == 1.0 and gauge["samples"] == 2
    hist = snap["histograms"]["completion_round"]
    assert hist["count"] == 1 and hist["sum"] == 12
    assert tuple(hist["boundaries"]) == DEFAULT_BOUNDARIES


def test_collector_rejects_bad_updates():
    m = MetricsCollector()
    with pytest.raises(SimulationError, match="must be >= 0"):
        m.count("x", -1)
    m.observe("h", 1, boundaries=(1, 2))
    with pytest.raises(SimulationError, match="boundaries changed"):
        m.observe("h", 1, boundaries=(1, 3))


def test_collector_merge_matches_single_stream():
    # Merging per-worker snapshots must equal one collector that saw
    # every observation — the property that makes fleet telemetry
    # worker- and shard-count invariant.
    whole = MetricsCollector()
    parts = [MetricsCollector() for _ in range(3)]
    for index, part in enumerate(parts):
        for value in range(index + 2):
            whole.count("events")
            part.count("events")
            whole.observe("size", value * 10 + 1)
            part.observe("size", value * 10 + 1)
        whole.gauge("fill", float(index))
        part.gauge("fill", float(index))
    merged = MetricsCollector()
    for part in parts:
        merged.merge_snapshot(part.snapshot())
    assert merged.snapshot() == whole.snapshot()


def test_collector_merge_snapshot_validates_shape():
    m = MetricsCollector()
    with pytest.raises(SimulationError, match="counter"):
        m.merge_snapshot({"counters": {"x": -2}})
    with pytest.raises(SimulationError, match="gauge"):
        m.merge_snapshot({"gauges": {"g": {"last": 1.0}}})


def test_collector_merge_does_not_alias_histograms():
    a, b = MetricsCollector(), MetricsCollector()
    b.observe("h", 1, boundaries=(1, 2))
    a.merge(b)
    b.observe("h", 1, boundaries=(1, 2))
    assert a.snapshot()["histograms"]["h"]["count"] == 1  # unchanged


# -- SpanRecorder --------------------------------------------------------
def test_span_recorder_emits_nested_spans(tmp_path):
    path = tmp_path / "t.jsonl"
    with JsonlTracer(path) as tracer:
        spans = SpanRecorder(tracer)
        assert spans.enabled
        spans.begin("run", scheme="ltnc")
        with spans.wrap("collect"):
            assert spans.depth == 2
        spans.end(rounds=9)
    records = [r for r in read_trace(path) if r["kind"] == "span"]
    # collect closes first (inner), run second; depth is post-pop.
    assert [r["name"] for r in records] == ["collect", "run"]
    assert records[0]["depth"] == 1 and records[1]["depth"] == 0
    assert records[1]["scheme"] == "ltnc" and records[1]["rounds"] == 9
    assert all(r["dt"] >= 0 for r in records)


def test_span_recorder_wrap_is_exception_safe(tmp_path):
    path = tmp_path / "t.jsonl"
    with JsonlTracer(path) as tracer:
        spans = SpanRecorder(tracer)
        with pytest.raises(RuntimeError, match="boom"):
            with spans.wrap("run"):
                raise RuntimeError("boom")
        assert spans.depth == 0  # stack unwound; recorder reusable
        with spans.wrap("again"):
            pass
    names = [r["name"] for r in read_trace(path) if r["kind"] == "span"]
    assert names == ["run", "again"]


def test_span_recorder_disabled_is_inert_and_shared():
    spans = SpanRecorder(None)
    assert not spans.enabled
    context = spans.wrap("x")
    assert context is spans.wrap("y")  # shared null context, no allocs
    with context:
        pass
    spans.end()  # no-op when disabled, never raises


def test_span_recorder_unbalanced_end_raises(tmp_path):
    with JsonlTracer(tmp_path / "t.jsonl") as tracer:
        spans = SpanRecorder(tracer)
        with pytest.raises(SimulationError, match="without a matching begin"):
            spans.end()
