"""Unit tests for the observability layer (repro.obs + tracestats).

Covers the pieces in isolation — the invariance contracts (traced runs
change nothing) live in ``tests/test_obs_invariance.py``:

* ``JsonlTracer`` — header-first JSONL, event/counter/span shapes,
  idempotent close, post-close drops;
* ``PhaseProfiler`` — accumulation, merge, snapshot fractions, the
  refine hook;
* fleet progress — EMA trials/sec, replay exclusion, rendering, the
  atomic ``progress.json``;
* ``ObsSpec`` — validation, tracer/profiler construction, exclusion
  from workload identity;
* ``tracestats`` — schema validation and the derived views.
"""

import json

import pytest

from repro.errors import SimulationError
from repro.obs import (
    NULL_TRACER,
    PHASES,
    PROGRESS_FORMAT,
    PROGRESS_VERSION,
    TRACE_FORMAT,
    TRACE_VERSION,
    JsonlTracer,
    ObsSpec,
    PhaseProfiler,
    ProgressTracker,
    node_rank,
    read_trace,
    render_progress,
    set_refine_profiler,
    trace_filename,
    write_progress,
)
from repro.obs import profiler as profiler_module
from repro.experiments.tracestats import (
    completion_wave,
    counter_totals,
    phase_breakdown,
    rank_curve,
    trace_summary,
    validate_trace,
)
from repro.experiments import tracestats


# -- tracer --------------------------------------------------------------
def test_null_tracer_is_disabled_and_inert():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.detail == "round"
    NULL_TRACER.event("x", round=1)
    NULL_TRACER.counter("y", 3)
    with NULL_TRACER.span("z"):
        pass
    NULL_TRACER.close()  # all no-ops


def test_jsonl_tracer_writes_header_first(tmp_path):
    path = tmp_path / "t.jsonl"
    with JsonlTracer(path, meta={"scenario": "s", "seed": 7}) as tracer:
        tracer.event("round", round=0, completed=2)
        tracer.counter("sessions", 5)
        with tracer.span("run", part="all"):
            pass
    records = read_trace(path)
    assert [r["kind"] for r in records] == ["header", "event", "counter", "span"]
    header = records[0]
    assert header["format"] == TRACE_FORMAT
    assert header["version"] == TRACE_VERSION
    assert header["scenario"] == "s" and header["seed"] == 7
    assert records[1]["round"] == 0 and records[1]["completed"] == 2
    assert records[2]["value"] == 5
    assert records[3]["dt"] >= 0 and records[3]["part"] == "all"
    assert all(r["t"] >= 0 for r in records[1:])


def test_jsonl_tracer_close_is_idempotent_and_drops_late_records(tmp_path):
    tracer = JsonlTracer(tmp_path / "t.jsonl")
    tracer.close()
    tracer.close()
    tracer.event("late", round=9)  # silently dropped
    assert len(read_trace(tmp_path / "t.jsonl")) == 1  # header only


def test_jsonl_tracer_rejects_unknown_detail(tmp_path):
    with pytest.raises(ValueError, match="detail"):
        JsonlTracer(tmp_path / "t.jsonl", detail="packet")


def test_read_trace_rejects_malformed_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "header"}\nnot json\n')
    with pytest.raises(ValueError, match="bad.jsonl:2"):
        read_trace(path)
    path.write_text('["list"]\n')
    with pytest.raises(ValueError, match="JSON objects"):
        read_trace(path)


def test_trace_filename_is_filesystem_safe():
    assert trace_filename("baseline", 3) == "trace-baseline-3.jsonl"
    assert (
        trace_filename("baseline[ltnc]/x", 3) == "trace-baseline_ltnc_x-3.jsonl"
    )


def test_node_rank_reads_known_node_shapes():
    class Rlnc:
        rank = 4

    class Ltnc:
        decoded_count = 7

    class Wc:
        received = {1, 2}

    assert node_rank(Rlnc()) == 4
    assert node_rank(Ltnc()) == 7
    assert node_rank(Wc()) == 2
    assert node_rank(object()) is None


# -- profiler ------------------------------------------------------------
def test_phase_profiler_accumulates_and_snapshots():
    p = PhaseProfiler()
    assert not p
    p.add("encode", 0.25)
    p.add("encode", 0.25, calls=2)
    p.add("decode", 0.5)
    assert p
    assert p.total_seconds() == pytest.approx(1.0)
    snap = p.snapshot()
    assert list(snap) == ["encode", "decode"]  # canonical PHASES order
    assert snap["encode"]["calls"] == 3
    assert snap["encode"]["fraction"] == pytest.approx(0.5)


def test_phase_profiler_context_manager_and_merge():
    a, b = PhaseProfiler(), PhaseProfiler()
    with a.phase("sampling"):
        pass
    b.add("sampling", 1.0, calls=4)
    b.add("other", 2.0)
    a.merge(b)
    assert a.calls["sampling"] == 5
    assert a.seconds["other"] == pytest.approx(2.0)
    # Unknown phases sort after the canonical ones.
    assert list(a.snapshot()) == ["sampling", "other"]
    assert set(PHASES) == {"sampling", "channel", "encode", "decode", "refine"}


def test_refine_profiler_hook_installs_and_clears():
    p = PhaseProfiler()
    set_refine_profiler(p)
    try:
        assert profiler_module.REFINE_PROFILER is p
    finally:
        set_refine_profiler(None)
    assert profiler_module.REFINE_PROFILER is None


# -- fleet progress ------------------------------------------------------
def test_progress_tracker_ema_and_eta():
    tracker = ProgressTracker(shards_total=4, trials_total=40)
    beat = tracker.shard_finished("s", 0, n_trials=10, seconds=2.0)
    assert beat.shards_done == 1 and beat.trials_done == 10
    assert beat.trials_per_sec == pytest.approx(5.0)
    assert beat.eta_seconds == pytest.approx(30 / 5.0)
    # EMA with alpha 0.5 moves halfway towards the new rate.
    beat = tracker.shard_finished("s", 1, n_trials=10, seconds=1.0)
    assert beat.trials_per_sec == pytest.approx(7.5)


def test_progress_tracker_excludes_replayed_shards_from_rate():
    tracker = ProgressTracker(shards_total=2, trials_total=20)
    live = tracker.shard_finished("s", 0, n_trials=10, seconds=2.0)
    replay = tracker.shard_finished(
        "s", 1, n_trials=10, seconds=0.001, replayed=True
    )
    assert replay.shards_done == 2 and replay.trials_done == 20
    # The instantaneous replay did not poison the throughput estimate.
    assert replay.trials_per_sec == live.trials_per_sec
    assert replay.replayed is True
    assert "(replayed)" in render_progress(replay)


def test_render_progress_is_one_line():
    tracker = ProgressTracker(shards_total=8, trials_total=32)
    beat = tracker.shard_finished("baseline", 2, n_trials=4, seconds=1.0)
    line = render_progress(beat)
    assert "\n" not in line
    assert "baseline" in line and "shard 1/8" in line and "ETA" in line


def test_write_progress_is_atomic_json(tmp_path):
    tracker = ProgressTracker(shards_total=1, trials_total=4)
    beat = tracker.shard_finished("s", 0, n_trials=4, seconds=1.0)
    out = tmp_path / "progress.json"
    write_progress(out, beat)
    payload = json.loads(out.read_text())
    assert payload["format"] == PROGRESS_FORMAT
    assert payload["version"] == PROGRESS_VERSION
    assert payload["shards_done"] == payload["shards_total"] == 1
    assert payload["updated_unix"] > 0
    assert not list(tmp_path.glob("*.tmp*"))


# -- ObsSpec -------------------------------------------------------------
def test_obs_spec_validates_detail():
    with pytest.raises(SimulationError, match="detail"):
        ObsSpec(trace_dir="x", detail="packet")


def test_obs_spec_enabled_and_builders(tmp_path):
    off = ObsSpec()
    assert not off.enabled
    assert off.build_tracer("s", 1) is NULL_TRACER
    assert off.build_profiler() is None

    tracing = ObsSpec(trace_dir=tmp_path)
    assert tracing.enabled
    tracer = tracing.build_tracer("s", 1)
    try:
        assert tracer.enabled
        assert tracer.path == tmp_path / trace_filename("s", 1)
    finally:
        tracer.close()

    profiling = ObsSpec(profile=True)
    assert profiling.enabled
    assert profiling.build_tracer("s", 1) is NULL_TRACER
    assert isinstance(profiling.build_profiler(), PhaseProfiler)


def test_obs_spec_roundtrips_and_stays_out_of_workload_identity(tmp_path):
    from repro.scenarios.spec import ScenarioSpec

    obs = ObsSpec(trace_dir=tmp_path, detail="session", profile=True)
    assert ObsSpec.from_dict(obs.to_dict()) == obs

    plain = ScenarioSpec(name="s", n_nodes=8, k=16)
    observed = plain.with_(obs=obs)
    assert observed.obs == obs
    assert observed.to_dict() == plain.to_dict()
    # from_dict accepts the dict form too (worker-side plumbing).
    assert ScenarioSpec(name="s", obs=obs.to_dict()).obs == obs


# -- tracestats ----------------------------------------------------------
def _trace_records():
    return [
        {
            "kind": "header",
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "detail": "round",
            "scenario": "s",
            "seed": 3,
        },
        {"kind": "event", "name": "round", "t": 0.1, "round": 0,
         "completed": 0, "rank_total": 3, "rank_min": 0, "rank_max": 2},
        {"kind": "event", "name": "round", "t": 0.2, "round": 1,
         "completed": 2, "rank_total": 9, "rank_min": 1, "rank_max": 5},
        {"kind": "event", "name": "complete", "t": 0.2, "node": 0, "round": 1},
        {"kind": "event", "name": "complete", "t": 0.2, "node": 1, "round": 1},
        {"kind": "event", "name": "phases", "t": 0.3,
         "phases": {"encode": {"seconds": 0.2, "calls": 5, "fraction": 1.0}}},
        {"kind": "counter", "name": "sessions", "t": 0.3, "value": 11},
        {"kind": "counter", "name": "sessions", "t": 0.4, "value": 12},
    ]


def test_validate_trace_accepts_real_shape():
    header = validate_trace(_trace_records())
    assert header["scenario"] == "s"


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda r: r.pop(0), "not the header"),
        (lambda r: r[0].update(version=99), "header.version"),
        (lambda r: r[0].update(detail="packet"), "header.detail"),
        (lambda r: r.append({"kind": "header"}), "duplicate header"),
        (lambda r: r.append({"kind": "blob", "t": 0.1}), "unknown kind"),
        (lambda r: r[1].pop("t"), "bad timestamp"),
        (lambda r: r[1].pop("name"), "no name"),
        (lambda r: r[-1].update(value="many"), "not an integer"),
    ],
)
def test_validate_trace_rejects_bad_records(mutate, message):
    records = _trace_records()
    mutate(records)
    with pytest.raises(ValueError, match=message):
        validate_trace(records)


def test_validate_trace_rejects_empty():
    with pytest.raises(ValueError, match="empty trace"):
        validate_trace([])


def test_tracestats_views():
    records = _trace_records()
    curve = rank_curve(records)
    assert [row["round"] for row in curve] == [0, 1]
    assert curve[1]["rank_total"] == 9
    assert completion_wave(records) == {1: 2}
    assert phase_breakdown(records)["encode"]["calls"] == 5
    assert counter_totals(records) == {"sessions": 12}  # last sample wins
    summary = trace_summary(records)
    assert summary["rounds"] == 2 and summary["completions"] == 2


def test_tracestats_cli_validates_and_summarises(tmp_path, capsys):
    path = tmp_path / "t.jsonl"
    with open(path, "w") as fh:
        for record in _trace_records():
            fh.write(json.dumps(record) + "\n")
    assert tracestats.main(["--validate", str(path)]) == 0
    assert f"OK {path}" in capsys.readouterr().out

    out = tmp_path / "summary.json"
    assert tracestats.main(
        ["--curve", "--wave", "--phases", "--json", str(out), str(path)]
    ) == 0
    text = capsys.readouterr().out
    assert "rank_total" in text and "completions" in text and "encode" in text
    payload = json.loads(out.read_text())
    assert payload[str(path)]["counters"] == {"sessions": 12}


def test_tracestats_cli_fails_on_invalid_trace(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "event", "name": "round", "t": 0.0}\n')
    assert tracestats.main(["--validate", str(path)]) == 1
    assert "INVALID" in capsys.readouterr().err


# -- gzip traces ---------------------------------------------------------
def test_trace_filename_compress_flag():
    assert trace_filename("baseline", 3, compress=True) == (
        "trace-baseline-3.jsonl.gz"
    )
    assert trace_filename("baseline", 3) == "trace-baseline-3.jsonl"


def test_jsonl_tracer_gzip_roundtrip(tmp_path):
    import gzip

    path = tmp_path / trace_filename("s", 7, compress=True)
    with JsonlTracer(path, meta={"scenario": "s", "seed": 7}) as tracer:
        tracer.event("round", round=0, completed=1)
        with tracer.span("run"):
            pass
    # The bytes on disk really are gzip...
    with gzip.open(path, "rt") as fh:
        assert json.loads(fh.readline())["kind"] == "header"
    # ...and read_trace reads it transparently, same shape as plain.
    records = read_trace(path)
    assert [r["kind"] for r in records] == ["header", "event", "span"]
    validate_trace(records, source=str(path))


def test_emit_span_records_duration_and_depth(tmp_path):
    import time as time_module

    path = tmp_path / "t.jsonl"
    with JsonlTracer(path) as tracer:
        tracer.emit_span("collect", time_module.monotonic(), 0.25, depth=1)
    record = read_trace(path)[1]
    assert record["kind"] == "span" and record["name"] == "collect"
    assert record["dt"] == 0.25 and record["depth"] == 1
    assert record["t"] >= 0
    # NullTracer's twin is inert.
    NULL_TRACER.emit_span("collect", 0.0, 0.1)


# -- progress degradation ------------------------------------------------
def test_render_progress_degrades_on_zero_totals():
    from repro.obs.progress import FleetProgress

    beat = FleetProgress(
        scenario="s",
        shard_index=0,
        shards_done=0,
        shards_total=0,
        trials_done=0,
        trials_total=0,
        replayed=False,
        trials_per_sec=None,
        eta_seconds=None,
    )
    line = render_progress(beat)  # must not divide by zero
    assert "[shard 0/?]" in line
    assert "ETA ?" in line


def test_render_progress_unknown_rate_mid_run_shows_eta_placeholder():
    # All shards so far replayed from checkpoints: no rate sample yet.
    tracker = ProgressTracker(shards_total=4, trials_total=40)
    beat = tracker.shard_finished("s", 0, n_trials=10, seconds=0.0, replayed=True)
    assert beat.trials_per_sec is None and beat.eta_seconds is None
    assert "ETA ?" in render_progress(beat)
    # Once every trial is done there is nothing left to estimate.
    done = ProgressTracker(shards_total=1, trials_total=10)
    final = done.shard_finished("s", 0, n_trials=10, seconds=0.0, replayed=True)
    assert "ETA" not in render_progress(final)


# -- profiler exception safety -------------------------------------------
def test_phase_profiler_charges_raising_phase_and_keeps_accounting():
    p = PhaseProfiler()
    with pytest.raises(RuntimeError, match="boom"):
        with p.phase("encode"):
            raise RuntimeError("boom")
    # The aborted phase was still charged (once), and later phases are
    # unaffected: no leaked timer state, no double-charge.
    assert p.calls["encode"] == 1
    assert p.seconds["encode"] >= 0.0
    with p.phase("decode"):
        pass
    snap = p.snapshot()
    assert snap["decode"]["calls"] == 1
    assert snap["encode"]["calls"] == 1
    assert abs(p.total_seconds() - (p.seconds["encode"] + p.seconds["decode"])) < 1e-9


# -- tracestats spans / telemetry ----------------------------------------
def test_span_summary_view():
    from repro.experiments.tracestats import span_summary

    records = _trace_records() + [
        {"kind": "span", "name": "run", "t": 0.0, "dt": 0.5, "depth": 0},
        {"kind": "span", "name": "collect", "t": 0.4, "dt": 0.1, "depth": 1},
        {"kind": "span", "name": "run", "t": 0.6, "dt": 0.3, "depth": 0},
    ]
    table = span_summary(records)
    assert list(table) == ["collect", "run"]
    assert table["run"]["calls"] == 2
    assert table["run"]["seconds"] == pytest.approx(0.8)
    assert table["run"]["mean"] == pytest.approx(0.4)
    assert table["run"]["max"] == pytest.approx(0.5)
    assert table["collect"]["max_depth"] == 1
    assert trace_summary(records)["spans"]["run"]["calls"] == 2


def test_tracestats_cli_spans_and_telemetry(tmp_path, capsys):
    from repro.obs.telemetry import write_telemetry

    path = tmp_path / "t.jsonl"
    records = _trace_records() + [
        {"kind": "span", "name": "run", "t": 0.0, "dt": 0.5, "depth": 0},
    ]
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    telemetry = tmp_path / "telemetry.json"
    write_telemetry(
        telemetry, {"s": {"n_trials": 2, "counters": {"rounds": 9}}}
    )
    assert tracestats.main(
        ["--spans", "--telemetry", str(telemetry), str(path)]
    ) == 0
    out = capsys.readouterr().out
    assert "span" in out and "run" in out
    assert f"OK {telemetry}" in out and "trials=2" in out
    # --telemetry alone (no traces) is a valid invocation...
    assert tracestats.main(["--telemetry", str(telemetry)]) == 0
    capsys.readouterr()
    # ...and an invalid telemetry file exits 1.
    telemetry.write_text('{"format": "wrong"}')
    assert tracestats.main(["--telemetry", str(telemetry)]) == 1
    assert "INVALID" in capsys.readouterr().err
