"""Tests for the belief-propagation decoder front-end."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import EncodedPacket, make_content
from repro.errors import DecodingError
from repro.gf2 import IncrementalRref
from repro.lt import BeliefPropagationDecoder, LTEncoder, RobustSoliton
from repro.rng import make_rng


class TestReceive:
    def test_native_packet_decodes(self):
        dec = BeliefPropagationDecoder(4)
        out = dec.receive(EncodedPacket.native(4, 1, np.array([7], np.uint8)))
        assert out.decoded == [1]
        assert out.useful
        assert dec.is_decoded(1)

    def test_redundant_native_flagged(self):
        dec = BeliefPropagationDecoder(4)
        pkt = EncodedPacket.native(4, 1)
        dec.receive(pkt)
        out = dec.receive(pkt.copy())
        assert out.redundant and not out.useful
        assert dec.redundant_received == 1

    def test_reduction_against_decoded(self):
        content = make_content(4, 3, rng=0)
        dec = BeliefPropagationDecoder(4)
        dec.receive(EncodedPacket.native(4, 0, content[0]))
        # x0 ^ x1 arrives; should decode x1 directly.
        out = dec.receive(EncodedPacket.combine(4, [0, 1], payloads=content))
        assert out.decoded == [1]
        assert np.array_equal(dec.native_payload(1), content[1])

    def test_wrong_k_rejected(self):
        dec = BeliefPropagationDecoder(4)
        with pytest.raises(DecodingError):
            dec.receive(EncodedPacket.native(5, 0))

    def test_native_payload_before_decode_raises(self):
        dec = BeliefPropagationDecoder(4)
        with pytest.raises(DecodingError):
            dec.native_payload(0)

    def test_recovered_content_requires_completion(self):
        dec = BeliefPropagationDecoder(2)
        dec.receive(EncodedPacket.native(2, 0, np.array([1], np.uint8)))
        with pytest.raises(DecodingError):
            dec.recovered_content()

    def test_recovered_content_symbolic_raises(self):
        dec = BeliefPropagationDecoder(2)
        dec.receive(EncodedPacket.native(2, 0))
        dec.receive(EncodedPacket.native(2, 1))
        assert dec.is_complete()
        with pytest.raises(DecodingError):
            dec.recovered_content()


class TestEndToEnd:
    @pytest.mark.parametrize("k", [8, 32, 128])
    def test_lt_stream_decodes_and_matches(self, k):
        content = make_content(k, 16, rng=k)
        enc = LTEncoder(k, RobustSoliton(k), payloads=content, rng=k)
        dec = BeliefPropagationDecoder(k)
        budget = 60 * k  # extremely generous; failure means a real bug
        while not dec.is_complete() and budget:
            dec.receive(enc.next_packet())
            budget -= 1
        assert dec.is_complete()
        assert np.array_equal(dec.recovered_content(), content)

    def test_decoded_count_monotonic(self):
        k = 32
        enc = LTEncoder(k, RobustSoliton(k), rng=3)
        dec = BeliefPropagationDecoder(k)
        last = 0
        for _ in range(40 * k):
            dec.receive(enc.next_packet())
            assert dec.decoded_count >= last
            last = dec.decoded_count
            if dec.is_complete():
                break
        assert dec.is_complete()

    def test_bp_overhead_shrinks_with_k(self):
        """LT reception overhead epsilon decreases with code length.

        This is the root cause of Fig. 7c's decreasing overhead curve.
        Averaged over seeds to keep the test robust.
        """

        def mean_overhead(k, runs=3):
            total = 0.0
            for seed in range(runs):
                enc = LTEncoder(k, RobustSoliton(k), rng=seed)
                dec = BeliefPropagationDecoder(k)
                n = 0
                while not dec.is_complete():
                    dec.receive(enc.next_packet())
                    n += 1
                total += n / k - 1
            return total / runs

        assert mean_overhead(256) < mean_overhead(16)


class TestAgainstGaussOracle:
    """BP can only ever decode what the span allows; never more."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_bp_decodes_subset_of_span(self, seed):
        k = 16
        rng = make_rng(seed)
        dec = BeliefPropagationDecoder(k)
        oracle = IncrementalRref(k)
        enc = LTEncoder(k, RobustSoliton(k), rng=rng)
        for _ in range(20):
            pkt = enc.next_packet()
            dec.receive(pkt)
            oracle.insert(pkt.vector)
        # Every BP-decoded native must be Gauss-decodable: the unit
        # vector lies in the span of everything received.
        from repro.gf2 import BitVector

        for idx in dec.decoded_set():
            unit = BitVector.from_indices(k, [idx])
            assert oracle.contains(unit)

    def test_bp_completion_implies_full_rank(self):
        k = 24
        enc = LTEncoder(k, RobustSoliton(k), rng=1)
        dec = BeliefPropagationDecoder(k)
        oracle = IncrementalRref(k)
        while not dec.is_complete():
            pkt = enc.next_packet()
            dec.receive(pkt)
            oracle.insert(pkt.vector)
        assert oracle.is_full_rank()


class TestEncoder:
    def test_encoder_k_mismatch(self):
        from repro.errors import DimensionError

        with pytest.raises(DimensionError):
            LTEncoder(8, RobustSoliton(9))

    def test_encoder_payload_shape_checked(self):
        from repro.errors import DimensionError

        with pytest.raises(DimensionError):
            LTEncoder(8, RobustSoliton(8), payloads=np.zeros((4, 2), np.uint8))

    def test_degrees_follow_distribution(self):
        k = 64
        dist = RobustSoliton(k)
        enc = LTEncoder(k, dist, rng=5)
        from repro.lt.distributions import empirical_degrees, total_variation

        degrees = [enc.next_packet().degree for _ in range(20_000)]
        assert total_variation(empirical_degrees(degrees, k), dist.pmf) < 0.03

    def test_balanced_mode_flattens_usage(self):
        k = 64
        uniform = LTEncoder(k, RobustSoliton(k), rng=2, balanced=False)
        balanced = LTEncoder(k, RobustSoliton(k), rng=2, balanced=True)
        for _ in range(2000):
            uniform.next_packet()
            balanced.next_packet()
        assert balanced.native_degree_rsd() < uniform.native_degree_rsd()

    def test_rsd_zero_before_emission(self):
        enc = LTEncoder(8, RobustSoliton(8), rng=0)
        assert enc.native_degree_rsd() == 0.0

    def test_packets_helper(self):
        enc = LTEncoder(8, RobustSoliton(8), rng=0)
        assert len(enc.packets(5)) == 5
        assert enc.emitted == 5
