"""Unit tests for the dissemination metrics container."""

import pytest

from repro.errors import SimulationError
from repro.gossip.metrics import DisseminationResult


def _result(**kwargs):
    base = DisseminationResult("ltnc", n_nodes=4, k=10)
    for key, value in kwargs.items():
        setattr(base, key, value)
    return base


def test_initial_state():
    result = _result()
    assert result.completed_count == 0
    assert not result.all_complete
    assert result.completed_fraction() == 0.0
    assert result.abort_rate() == 0.0


def test_completion_stats():
    result = _result(completion_rounds={0: 10, 1: 20, 2: 30, 3: 40})
    assert result.all_complete
    assert result.average_completion_round() == 25.0
    assert result.completion_percentile(50) == 25.0
    assert result.completion_percentile(100) == 40.0


def test_stats_require_completions():
    result = _result()
    with pytest.raises(SimulationError):
        result.average_completion_round()
    with pytest.raises(SimulationError):
        result.completion_percentile(50)
    with pytest.raises(SimulationError):
        result.overhead()


def test_overhead_accounting():
    result = _result(
        completion_rounds={0: 5, 1: 7},
        data_until_complete={0: 12, 1: 14},
    )
    # Extra transfers: (12-10) and (14-10) over k=10 -> mean 3/10.
    assert result.overhead() == pytest.approx(0.3)


def test_overhead_zero_when_exactly_k():
    result = _result(
        completion_rounds={0: 5},
        data_until_complete={0: 10},
    )
    assert result.overhead() == 0.0


def test_abort_rate():
    result = _result(sessions=100, aborted=25)
    assert result.abort_rate() == 0.25


def test_record_round_series():
    result = _result()
    result.completion_rounds[0] = 0
    result.record_round(0)
    result.completion_rounds[1] = 1
    result.completion_rounds[2] = 1
    result.record_round(1)
    assert result.rounds == 2
    assert result.series_rounds == [0, 1]
    assert result.series_completed == [0.25, 0.75]
