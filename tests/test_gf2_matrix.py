"""Unit and property tests for repro.gf2.matrix (Gauss / RREF)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import OpCounter
from repro.errors import DecodingError, DimensionError
from repro.gf2 import BitVector, GF2Matrix, IncrementalRref
from repro.gf2.matrix import rank_of


def bv(n, idx):
    return BitVector.from_indices(n, idx)


class TestGF2Matrix:
    def test_rank_identity(self):
        rows = [bv(4, [i]) for i in range(4)]
        assert GF2Matrix(rows).rank() == 4

    def test_rank_dependent_rows(self):
        rows = [bv(4, [0, 1]), bv(4, [1, 2]), bv(4, [0, 2])]
        assert GF2Matrix(rows).rank() == 2

    def test_rank_zero_rows(self):
        assert GF2Matrix([bv(5, []), bv(5, [])]).rank() == 0

    def test_empty_matrix(self):
        m = GF2Matrix([])
        assert m.rank() == 0 and m.nrows == 0

    def test_ragged_rows_rejected(self):
        with pytest.raises(DimensionError):
            GF2Matrix([bv(3, [0]), bv(4, [0])])

    def test_from_to_dense_round_trip(self):
        arr = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        m = GF2Matrix.from_dense(arr)
        assert np.array_equal(m.to_dense(), arr)

    def test_from_dense_requires_2d(self):
        with pytest.raises(DimensionError):
            GF2Matrix.from_dense(np.zeros(3))

    def test_row_reduce_yields_basis(self):
        rows = [bv(4, [0, 1]), bv(4, [1, 2]), bv(4, [0, 2]), bv(4, [3])]
        reduced = GF2Matrix(rows).row_reduce()
        assert reduced.nrows == 3
        assert reduced.rank() == 3

    def test_matrix_rank_does_not_mutate(self):
        rows = [bv(3, [0, 1]), bv(3, [1, 2])]
        m = GF2Matrix(rows)
        dense_before = m.to_dense()
        m.rank()
        assert np.array_equal(m.to_dense(), dense_before)


class TestIncrementalRref:
    def test_insert_innovative_and_duplicate(self):
        r = IncrementalRref(4)
        assert r.insert(bv(4, [0, 1]))
        assert not r.insert(bv(4, [0, 1]))
        assert r.rank == 1

    def test_span_detection(self):
        r = IncrementalRref(4)
        r.insert(bv(4, [0, 1]))
        r.insert(bv(4, [1, 2]))
        assert r.contains(bv(4, [0, 2]))
        assert not r.contains(bv(4, [0, 3]))
        assert r.is_innovative(bv(4, [3]))

    def test_zero_vector_never_innovative(self):
        r = IncrementalRref(4)
        assert not r.insert(bv(4, []))

    def test_ncols_validation(self):
        with pytest.raises(DimensionError):
            IncrementalRref(0)
        r = IncrementalRref(4)
        with pytest.raises(DimensionError):
            r.insert(bv(5, [0]))

    def test_full_rank_and_basis_is_identity(self):
        r = IncrementalRref(3)
        r.insert(bv(3, [0, 1]))
        r.insert(bv(3, [1, 2]))
        r.insert(bv(3, [2]))
        assert r.is_full_rank()
        # RREF at full rank = unit vectors
        assert sorted(row.first_index() for row in r.basis_rows()) == [0, 1, 2]
        assert all(row.weight() == 1 for row in r.basis_rows())

    def test_decode_recovers_natives(self):
        k, m = 5, 7
        rng = np.random.default_rng(3)
        content = rng.integers(0, 256, size=(k, m), dtype=np.uint8)
        r = IncrementalRref(k, payload_nbytes=m)
        while not r.is_full_rank():
            idx = rng.choice(k, size=rng.integers(1, k + 1), replace=False)
            payload = content[idx[0]].copy()
            for i in idx[1:]:
                payload ^= content[i]
            r.insert(bv(k, (int(i) for i in idx)), payload)
        decoded = r.decode()
        for i in range(k):
            assert np.array_equal(decoded[i], content[i])

    def test_decode_before_full_rank_raises(self):
        r = IncrementalRref(3, payload_nbytes=2)
        r.insert(bv(3, [0]), np.zeros(2, np.uint8))
        with pytest.raises(DecodingError):
            r.decode()

    def test_decode_symbolic_mode_raises(self):
        r = IncrementalRref(2)
        r.insert(bv(2, [0]))
        r.insert(bv(2, [1]))
        with pytest.raises(DecodingError):
            r.decode()

    def test_payload_shape_validated(self):
        r = IncrementalRref(3, payload_nbytes=4)
        with pytest.raises(DimensionError):
            r.insert(bv(3, [0]), np.zeros(5, np.uint8))

    def test_reduce_does_not_mutate_input(self):
        r = IncrementalRref(4)
        r.insert(bv(4, [0, 1]))
        v = bv(4, [0, 1, 2])
        r.reduce(v)
        assert sorted(v.indices()) == [0, 1, 2]

    def test_operation_counting(self):
        counter = OpCounter()
        r = IncrementalRref(8, counter=counter)
        r.insert(bv(8, [0, 1]))
        r.insert(bv(8, [1, 2]))
        r.insert(bv(8, [0, 2]))  # dependent: pure reduction work
        assert counter.get("gauss_row_xor") > 0
        assert counter.get("vec_word_xor") > 0

    def test_rank_of_helper(self):
        assert rank_of([]) == 0
        assert rank_of([bv(3, [0]), bv(3, [0])]) == 1
        assert rank_of([bv(3, [0]), bv(3, [1]), bv(3, [0, 1])]) == 2


# ----------------------------------------------------------------------
# Property-based: RREF against brute-force rank
# ----------------------------------------------------------------------


def brute_rank(rows: list[BitVector], ncols: int) -> int:
    """Rank via numpy row reduction over GF(2)."""
    if not rows:
        return 0
    mat = np.zeros((len(rows), ncols), dtype=np.uint8)
    for i, row in enumerate(rows):
        mat[i, row.indices()] = 1
    rank = 0
    for col in range(ncols):
        pivot = None
        for r in range(rank, len(rows)):
            if mat[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        mat[[rank, pivot]] = mat[[pivot, rank]]
        for r in range(len(rows)):
            if r != rank and mat[r, col]:
                mat[r] ^= mat[rank]
        rank += 1
    return rank


@st.composite
def row_sets(draw):
    ncols = draw(st.integers(1, 24))
    nrows = draw(st.integers(0, 30))
    rows = []
    for _ in range(nrows):
        idx = draw(st.lists(st.integers(0, ncols - 1), max_size=ncols))
        rows.append(BitVector.from_indices(ncols, idx))
    return ncols, rows


@settings(max_examples=60)
@given(row_sets())
def test_incremental_rank_matches_brute_force(case):
    ncols, rows = case
    r = IncrementalRref(ncols)
    for row in rows:
        r.insert(row)
    assert r.rank == brute_rank(rows, ncols)


@settings(max_examples=60)
@given(row_sets())
def test_span_membership_consistent(case):
    ncols, rows = case
    r = IncrementalRref(ncols)
    for row in rows:
        r.insert(row)
    # Every inserted row is in the span; XOR of any two as well.
    for row in rows:
        assert r.contains(row)
    if len(rows) >= 2:
        assert r.contains(rows[0].__xor__(rows[1]))


@settings(max_examples=40)
@given(row_sets())
def test_rref_rows_have_unique_pivots(case):
    ncols, rows = case
    r = IncrementalRref(ncols)
    for row in rows:
        r.insert(row)
    pivots = [row.first_index() for row in r.basis_rows()]
    assert len(pivots) == len(set(pivots))
    # Reduced form: no basis row contains another row's pivot.
    for i, row in enumerate(r.basis_rows()):
        for j, p in enumerate(pivots):
            if i != j:
                assert not row.get(p)
