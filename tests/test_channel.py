"""Direct unit tests for the channel fault models.

The channel was previously exercised only through whole simulator runs
(test_failure_injection); these tests pin its edge cases down in
isolation: zero-rate channels must consume no randomness, per-receiver
loss must override the base rate exactly, and churn phases must apply
on their half-open round windows.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gossip.channel import ChannelModel, ChurnPhase, HeterogeneousChannel


def _state(rng: np.random.Generator) -> dict:
    return rng.bit_generator.state


def test_zero_rate_channel_never_fires_and_draws_nothing():
    channel = ChannelModel()
    rng = np.random.default_rng(0)
    before = _state(rng)
    for round_index in range(50):
        assert not channel.loses(rng, 0, 1)
        assert not channel.duplicates(rng)
        assert not channel.churns(rng, round_index)
    # A perfect channel must not perturb the fault rng stream: adding
    # faults to a scenario later must not reshuffle unrelated draws.
    assert _state(rng) == before


def test_certain_loss_always_fires():
    channel = ChannelModel(loss_rate=1.0)
    rng = np.random.default_rng(1)
    assert all(channel.loses(rng) for _ in range(20))


def test_channel_rates_validated():
    with pytest.raises(SimulationError):
        ChannelModel(loss_rate=-0.01)
    with pytest.raises(SimulationError):
        HeterogeneousChannel(node_loss=(0.1, 1.2))


def test_heterogeneous_loss_overrides_per_receiver():
    channel = HeterogeneousChannel(loss_rate=0.5, node_loss=(0.0, 1.0, 0.5))
    rng = np.random.default_rng(2)
    assert channel.loss_for(receiver=0) == 0.0
    assert channel.loss_for(receiver=1) == 1.0
    # Receivers beyond the tuple and the out-of-overlay source (-1)
    # fall back to the base rate.
    assert channel.loss_for(receiver=7) == 0.5
    assert channel.loss_for(receiver=-1) == 0.5
    assert not any(channel.loses(rng, 5, 0) for _ in range(50))
    assert all(channel.loses(rng, 5, 1) for _ in range(50))


def test_heterogeneous_is_perfect_accounts_for_extras():
    assert HeterogeneousChannel().is_perfect
    assert HeterogeneousChannel(node_loss=(0.0, 0.0)).is_perfect
    assert not HeterogeneousChannel(node_loss=(0.0, 0.2)).is_perfect
    assert not HeterogeneousChannel(
        churn_phases=(ChurnPhase(0, None, 0.1),)
    ).is_perfect


def test_churn_phase_window_is_half_open():
    phase = ChurnPhase(start=10, end=20, rate=0.5)
    assert not phase.covers(9)
    assert phase.covers(10)
    assert phase.covers(19)
    assert not phase.covers(20)
    open_ended = ChurnPhase(start=5, end=None, rate=0.5)
    assert open_ended.covers(1_000_000)
    assert not open_ended.covers(4)


def test_churn_phase_validation():
    with pytest.raises(SimulationError):
        ChurnPhase(start=-1, end=None, rate=0.1)
    with pytest.raises(SimulationError):
        ChurnPhase(start=5, end=5, rate=0.1)
    with pytest.raises(SimulationError):
        ChurnPhase(start=0, end=10, rate=1.5)


def test_scheduled_churn_first_matching_phase_wins():
    channel = HeterogeneousChannel(
        churn_rate=0.01,
        churn_phases=(
            ChurnPhase(start=10, end=20, rate=1.0),
            ChurnPhase(start=15, end=30, rate=0.0),
        ),
    )
    assert channel.churn_rate_at(5) == 0.01
    assert channel.churn_rate_at(10) == 1.0
    assert channel.churn_rate_at(17) == 1.0  # first phase still covers
    assert channel.churn_rate_at(25) == 0.0
    assert channel.churn_rate_at(40) == 0.01
    rng = np.random.default_rng(3)
    assert all(channel.churns(rng, r) for r in range(10, 20))


def test_base_channel_ignores_link_and_round_context():
    channel = ChannelModel(loss_rate=0.5, churn_rate=0.5)
    assert channel.loss_for(3, 4) == 0.5
    assert channel.churn_rate_at(123) == 0.5
