"""Tests for the structure-destroying recoding baseline."""

import numpy as np
import pytest

from repro.baselines.random_recode import RandomRecodeNode
from repro.coding.packet import make_content
from repro.errors import RecodingError
from repro.gossip import run_dissemination
from repro.lt.distributions import RobustSoliton
from repro.lt.encoder import LTEncoder


def test_rejects_bad_combine():
    with pytest.raises(RecodingError):
        RandomRecodeNode(0, 16, combine=0)


def test_default_combine_is_rlnc_sparsity():
    from repro.rlnc.node import default_sparsity

    node = RandomRecodeNode(0, 64)
    assert node.combine == default_sparsity(64)


def test_cannot_recode_empty():
    node = RandomRecodeNode(0, 16, rng=0)
    with pytest.raises(RecodingError):
        node.make_packet()


def test_recoded_payload_matches_vector():
    k, m = 32, 8
    content = make_content(k, m, rng=1)
    encoder = LTEncoder(k, RobustSoliton(k), payloads=content, rng=2)
    node = RandomRecodeNode(0, k, payload_nbytes=m, rng=3)
    for _ in range(40):
        node.receive(encoder.next_packet())
    for _ in range(60):
        packet = node.make_packet()
        expected = np.zeros(m, dtype=np.uint8)
        for i in packet.indices():
            expected ^= content[int(i)]
        assert np.array_equal(packet.payload, expected)


def test_degrees_drift_from_soliton():
    """Random recoding inflates degrees past the Robust Soliton head."""
    k = 64
    encoder = LTEncoder(k, RobustSoliton(k), rng=4)
    ltnc_style = RandomRecodeNode(0, k, rng=5)
    for _ in range(64):
        ltnc_style.receive(encoder.next_packet())
    degrees = [ltnc_style.make_packet().degree for _ in range(300)]
    low = sum(1 for d in degrees if d <= 2) / len(degrees)
    # The Robust Soliton puts ~40-50% of its mass on degrees 1-2; the
    # random recoder collapses that to a sliver.
    assert low < 0.25


def test_structure_preservation_is_what_makes_ltnc_work():
    """Same node, same decoder, same network — only recoding differs."""
    results = {}
    for scheme in ("ltnc", "rndlt"):
        results[scheme] = run_dissemination(
            scheme,
            n_nodes=10,
            k=32,
            seed=6,
            max_rounds=6000,
            node_kwargs={"aggressiveness": 0.01},
        )
    assert results["ltnc"].all_complete
    ltnc_time = results["ltnc"].average_completion_round()
    if results["rndlt"].all_complete:
        rndlt_time = results["rndlt"].average_completion_round()
        assert rndlt_time > 2.0 * ltnc_time
    else:
        # Stalling outright is an even stronger confirmation.
        assert results["rndlt"].completed_fraction() < 1.0


def test_content_still_correct_when_it_does_decode():
    k, m = 16, 8
    content = make_content(k, m, rng=7)
    from repro.gossip import EpidemicSimulator

    sim = EpidemicSimulator(
        "rndlt", 6, k, content=content, seed=8, max_rounds=20_000
    )
    result = sim.run()
    assert result.all_complete
    for node in sim.nodes:
        assert np.array_equal(node.decoded_content(), content)
