"""Tests for Algorithm 1 — building a packet of a given degree."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.packet import make_content
from repro.core.builder import build_packet
from repro.core.degree_index import DegreeIndex
from repro.costmodel.counters import OpCounter
from repro.lt.tanner import TannerGraph


def _populate(k, supports, decoded=(), content=None):
    counter = OpCounter()
    graph = TannerGraph(k, counter=counter)
    index = DegreeIndex(k, counter=counter)
    for i in decoded:
        payload = content[i] if content is not None else None
        graph.insert({i}, payload)
        index.add_decoded(i)
    for support in supports:
        payload = None
        if content is not None:
            payload = np.zeros(content.shape[1], dtype=np.uint8)
            for i in support:
                payload ^= content[i]
        pid, _ = graph.insert(set(support), payload)
        index.add_packet(pid, len(support))
    return graph, index


def test_paper_worked_example():
    """Figure 4: d = 5 built as y1 + y2 from degrees 2 and 3.

    Packets available (0-indexed): y1 = x0+x1 (deg 2), y2 = x2+x3+x4
    (deg 3), y3 = x0+x2+x3+x4+x6 (deg 5 -> excluded by target order),
    plus x5 decoded.  A target of 5 must be reached exactly.
    """
    graph, index = _populate(
        7,
        [{0, 1}, {2, 3, 4}, {2, 3}, {2, 4}, {4, 6}],
        decoded=[5],
    )
    rng = np.random.default_rng(3)
    result = build_packet(5, graph, index, rng, OpCounter())
    assert result.degree == 5
    assert result.hit
    assert result.relative_deviation == 0.0


def test_degree_never_exceeds_target():
    graph, index = _populate(10, [{0, 1, 2}, {3, 4, 5}, {6, 7}, {8, 9}])
    rng = np.random.default_rng(0)
    for d in range(1, 11):
        result = build_packet(d, graph, index, rng, OpCounter())
        assert result.degree <= d


def test_single_packet_state():
    graph, index = _populate(6, [{1, 4}])
    rng = np.random.default_rng(1)
    result = build_packet(2, graph, index, rng, OpCounter())
    assert result.support == {1, 4}
    assert result.picked == [(2, 0)]


def test_builds_from_decoded_only():
    graph, index = _populate(6, [], decoded=[0, 2, 4])
    rng = np.random.default_rng(2)
    result = build_packet(3, graph, index, rng, OpCounter())
    assert result.support == {0, 2, 4}
    assert result.hit


def test_collision_rejected():
    """Packets that would shrink the degree must be skipped.

    With y1 = x0+x1 and y5 = x0+x2 available, building degree 2 picks
    one of them; adding the other would keep degree 2 (0+1+0+2 -> two
    new, one cancelled = degree 2... actually |{0,1}^{0,2}| = 2, which
    does not *increase* the degree, so it is rejected and z stays put).
    """
    graph, index = _populate(5, [{0, 1}, {0, 2}])
    rng = np.random.default_rng(4)
    result = build_packet(2, graph, index, rng, OpCounter())
    assert result.degree == 2
    assert len(result.picked) == 1


def test_payload_tracks_support():
    k, m = 12, 8
    content = make_content(k, m, rng=5)
    graph, index = _populate(
        k,
        [{0, 1}, {2, 3, 4}, {5, 6}, {7, 8, 9}],
        decoded=[10, 11],
        content=content,
    )
    rng = np.random.default_rng(6)
    for d in (2, 3, 5, 7):
        result = build_packet(d, graph, index, rng, OpCounter())
        expected = np.zeros(m, dtype=np.uint8)
        for i in result.support:
            expected ^= content[i]
        assert np.array_equal(result.payload, expected)


def test_counts_data_ops_in_symbolic_mode():
    graph, index = _populate(8, [{0, 1}, {2, 3}])
    counter = OpCounter()
    result = build_packet(4, graph, index, np.random.default_rng(7), counter)
    assert result.payload is None
    assert counter.get("payload_xor") == len(result.picked)


@settings(max_examples=60, deadline=None)
@given(
    k=st.integers(4, 16),
    supports=st.lists(
        st.sets(st.integers(0, 15), min_size=2, max_size=6),
        min_size=1,
        max_size=10,
    ),
    decoded=st.sets(st.integers(0, 15), max_size=5),
    d=st.integers(1, 16),
    seed=st.integers(0, 2**16),
)
def test_build_invariants(k, supports, decoded, d, seed):
    """Degree <= target; support equals XOR of picked items' supports."""
    d = min(d, k)
    decoded = {x % k for x in decoded}
    supports = [{x % k for x in s} - decoded for s in supports]
    supports = [s for s in supports if len(s) >= 2]
    graph, index = _populate(k, supports, decoded=sorted(decoded))
    rng = np.random.default_rng(seed)
    result = build_packet(d, graph, index, rng, OpCounter())
    assert result.degree <= d
    acc: set[int] = set()
    for degree_class, item in result.picked:
        if degree_class == 1:
            acc ^= {item}
        else:
            acc ^= graph.packets[item].support
    assert acc == result.support
    # Greedy acceptance is strictly increasing, so picks are distinct.
    assert len(result.picked) == len(set(result.picked))
