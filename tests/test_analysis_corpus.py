"""Seeded-violation corpus: every linter rule demonstrably fires.

Each rule has a fixture pair under ``tests/fixtures/lint/``: a
``*_violation.py`` that must trip exactly that rule (and no other), and
a ``*_clean.py`` twin exercising the sanctioned alternative that must
lint clean.  Fixtures are linted *as if* they lived under
``src/repro/`` via the engine's logical-path override; the corpus
directory itself is excluded from directory walks so the repo
self-check never sees these deliberate violations.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.engine import iter_python_files, lint_file
from repro.analysis.rules import RULES, RULES_BY_CODE

CORPUS = pathlib.Path(__file__).parent / "fixtures" / "lint"

#: (rule code, logical path the fixture pretends to live at).  LTNC004
#: only applies inside repro.obs; every other rule scopes to src/repro.
CASES = [
    ("LTNC001", "src/repro/_fixture.py"),
    ("LTNC002", "src/repro/_fixture.py"),
    ("LTNC003", "src/repro/_fixture.py"),
    ("LTNC004", "src/repro/obs/_fixture.py"),
    ("LTNC005", "src/repro/_fixture.py"),
    ("LTNC006", "src/repro/_fixture.py"),
    ("LTNC007", "src/repro/_fixture.py"),
]


def _fixture(code: str, kind: str) -> pathlib.Path:
    path = CORPUS / f"{code.lower()}_{kind}.py"
    assert path.is_file(), f"missing corpus fixture {path}"
    return path


def test_corpus_covers_every_rule():
    assert {code for code, _ in CASES} == set(RULES_BY_CODE)


@pytest.mark.parametrize(("code", "logical"), CASES)
def test_violation_fixture_trips_exactly_its_rule(code, logical):
    findings = lint_file(_fixture(code, "violation"), RULES, logical=logical)
    assert findings, f"{code} fixture produced no findings"
    assert {f.code for f in findings} == {code}


@pytest.mark.parametrize(("code", "logical"), CASES)
def test_clean_twin_lints_clean(code, logical):
    findings = lint_file(_fixture(code, "clean"), RULES, logical=logical)
    assert findings == [], [f.render() for f in findings]


@pytest.mark.parametrize(("code", "logical"), CASES)
def test_rule_fires_at_a_real_location(code, logical):
    for finding in lint_file(_fixture(code, "violation"), RULES, logical=logical):
        assert finding.line >= 1
        assert finding.path == logical
        assert finding.context, "finding should carry its source line"


def test_corpus_is_invisible_to_directory_walks():
    seen = list(iter_python_files([CORPUS.parent.parent]))  # tests/
    assert not any(CORPUS in p.parents for p in seen)


def test_corpus_files_lint_when_named_explicitly():
    path = _fixture("LTNC001", "violation")
    assert list(iter_python_files([path])) == [path]
