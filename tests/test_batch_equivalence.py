"""Batched execution is invisible: scalar ≡ batched, workers 1 ≡ 4.

PR 10's batched round planner and numpy elimination kernel are pure
execution strategies — the determinism contract says a trial's
*results* (completion trajectory, metrics, and every OpCounter total)
are bit-identical whichever path ran it.  This suite pins that
contract from three directions:

* a hypothesis sweep over simulator configs (feedback modes, loss,
  duplication, churn) asserting scalar and batched runs serialise to
  the same JSON — ``DisseminationResult.to_dict`` embeds the recode
  and decode counter snapshots, so op accounting is covered, not just
  metrics;
* the ``large_overlay`` preset (which hard-enables batching) re-run
  with batching forced off;
* the batched path under the parallel trial runner: a 1,024-node
  bounded workload aggregated with 1 worker and with 4 must produce
  byte-identical aggregate JSON (worker-count invariance does not
  decay at scale-out sizes).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scale import PROFILES
from repro.gossip.channel import ChannelModel
from repro.gossip.simulator import EpidemicSimulator, Feedback
from repro.scenarios import TrialRunner, get_preset

QUICK = PROFILES["quick"]


def _run_json(batch: str, **kw) -> str:
    result = EpidemicSimulator(batch_rounds=batch, **kw).run()
    return json.dumps(result.to_dict(), sort_keys=True)


@settings(max_examples=10, deadline=None)
@given(
    n_nodes=st.integers(min_value=8, max_value=40),
    k=st.integers(min_value=4, max_value=24),
    feedback=st.sampled_from([Feedback.NONE, Feedback.BINARY, Feedback.FULL]),
    loss=st.sampled_from([0.0, 0.1, 0.25]),
    duplicate=st.sampled_from([0.0, 0.15]),
    churn=st.sampled_from([0.0, 0.05]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_scalar_and_batched_runs_are_bit_identical(
    n_nodes, k, feedback, loss, duplicate, churn, seed
):
    kw = dict(
        scheme="ltnc",
        n_nodes=n_nodes,
        k=k,
        feedback=feedback,
        seed=seed,
        max_rounds=300,
        channel=ChannelModel(
            loss_rate=loss, duplicate_rate=duplicate, churn_rate=churn
        ),
    )
    assert _run_json("off", **kw) == _run_json("on", **kw)


def test_large_overlay_preset_is_scalar_identical():
    spec = get_preset("large_overlay", QUICK)
    assert spec.batch_rounds == "on"
    batched = spec.run(seed=2010)
    scalar = spec.with_(batch_rounds="off").run(seed=2010)
    assert json.dumps(batched.to_dict(), sort_keys=True) == json.dumps(
        scalar.to_dict(), sort_keys=True
    )


def test_batch_rounds_is_not_workload_identity():
    # The execution strategy must not leak into spec serialisation —
    # checkpoint fingerprints and aggregate JSON hash the spec.
    spec = get_preset("large_overlay", QUICK)
    assert spec.to_json() == spec.with_(batch_rounds="off").to_json()
    assert "batch_rounds" not in spec.to_dict()


def test_worker_split_invariance_at_scale_out_size():
    # N=1024 under the batched planner, rounds bounded so the test
    # stays in CI budget; the aggregate (metrics, series, counter
    # snapshots for every trial) must not depend on the worker split.
    spec = get_preset("large_overlay", QUICK).with_(
        name="n1024", n_nodes=1024, max_rounds=12
    )
    aggs = []
    for workers in (1, 4):
        agg = TrialRunner(n_workers=workers).run_grid(
            [spec], 2, master_seed=2010
        )["n1024"]
        aggs.append(agg.to_json())
    assert aggs[0] == aggs[1]
