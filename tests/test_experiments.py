"""Tests for the experiment harnesses (small, fast configurations)."""

import pytest

from repro.errors import SimulationError
from repro.experiments import (
    PROFILES,
    average_completion_time,
    collect_recoding_stats,
    cost_series,
    current_profile,
    feedback_ablation,
    ltnc_overhead,
    measure_decoding,
    measure_recoding,
    measure_redundant_insertions,
    refinement_ablation,
    run_convergence,
)


def test_profiles_well_formed():
    for name, profile in PROFILES.items():
        assert profile.name == name
        assert profile.n_nodes >= 2
        assert profile.monte_carlo >= 1
        assert all(k > 0 for k in profile.k_sweep)


def test_current_profile_env(monkeypatch):
    monkeypatch.setenv("LTNC_SCALE", "quick")
    assert current_profile().name == "quick"
    monkeypatch.setenv("LTNC_SCALE", "paper")
    assert current_profile().name == "paper"
    monkeypatch.setenv("LTNC_SCALE", "nope")
    with pytest.raises(KeyError):
        current_profile()


def test_run_convergence_curve():
    curve = run_convergence(
        "ltnc", n_nodes=8, k=16, monte_carlo=2, seed=0, max_rounds=4000
    )
    assert curve.scheme == "ltnc"
    assert curve.completed_fraction[-1] == pytest.approx(1.0)
    assert curve.fraction_at(10**9) == 1.0
    mid = curve.time_to_fraction(0.5)
    end = curve.time_to_fraction(1.0)
    assert 0 <= mid <= end


def test_average_completion_ordering():
    rlnc = average_completion_time(
        "rlnc", n_nodes=8, k=16, monte_carlo=2, seed=1, max_rounds=4000
    )
    wc = average_completion_time(
        "wc", n_nodes=8, k=16, monte_carlo=2, seed=1, max_rounds=4000
    )
    assert rlnc < wc


def test_ltnc_overhead_positive():
    overhead = ltnc_overhead(
        n_nodes=8, k=32, monte_carlo=2, seed=2, max_rounds=8000
    )
    assert overhead > 0.0


def test_measure_recoding_shapes():
    ltnc = measure_recoding("ltnc", 64, samples=30, seed=3)
    rlnc = measure_recoding("rlnc", 64, samples=30, seed=3)
    # Fig 8a: LTNC's build+refine control work exceeds RLNC's.
    assert ltnc.control_cycles > rlnc.control_cycles
    # Fig 8c: RLNC XORs ~ln k + 20 payloads; LTNC a handful.
    assert ltnc.data_cycles_per_byte < rlnc.data_cycles_per_byte
    with pytest.raises(SimulationError):
        measure_recoding("wc", 64)


def test_measure_decoding_shapes():
    ltnc = measure_decoding("ltnc", 256, seed=4)
    rlnc = measure_decoding("rlnc", 256, seed=4)
    # Fig 8b/8d: Gauss reduction dwarfs belief propagation.
    assert rlnc.control_cycles > ltnc.control_cycles
    assert rlnc.data_cycles_per_byte > ltnc.data_cycles_per_byte
    with pytest.raises(SimulationError):
        measure_decoding("wc", 64)


def test_cost_series_structure():
    series = cost_series("recoding", (16, 32), samples=10, seed=5)
    assert set(series) == {"ltnc", "rlnc"}
    for points in series.values():
        assert [p.k for p in points] == [16, 32]
    with pytest.raises(SimulationError):
        cost_series("sorting", (16,))


def test_collect_recoding_stats():
    stats = collect_recoding_stats(n_nodes=10, k=32, seed=6)
    assert 0.5 <= stats.first_pick_acceptance <= 1.0
    assert 0.5 <= stats.build_hit_rate <= 1.0
    assert stats.average_relative_deviation < 0.2
    assert stats.packets_recoded > 0
    assert stats.occurrence_rsd >= 0.0


def test_measure_redundant_insertions():
    stats = measure_redundant_insertions(k=48, stream_length=150, seed=7)
    assert stats.stream_length == 150
    # Detection must never *increase* redundant insertions.
    assert stats.redundant_inserted_with <= stats.redundant_inserted_without
    assert 0.0 <= stats.reduction <= 1.0


def test_refinement_ablation_lowers_rsd():
    outcomes = refinement_ablation(n_nodes=10, k=48, seed=8, monte_carlo=1)
    assert (
        outcomes["refine-on"].occurrence_rsd
        < outcomes["refine-off"].occurrence_rsd
    )


def test_feedback_ablation_none_ships_all():
    outcomes = feedback_ablation(n_nodes=8, k=32, seed=9, monte_carlo=1)
    none = outcomes["none"]
    binary = outcomes["binary"]
    assert none.abort_rate == 0.0
    assert binary.abort_rate > 0.0
    # Binary feedback avoids shipping some payloads.
    assert binary.data_transfers < none.data_transfers or (
        binary.sessions != none.sessions
    )
