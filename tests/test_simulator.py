"""Integration tests for the epidemic dissemination simulator."""

import numpy as np
import pytest

from repro.coding.packet import make_content
from repro.errors import SimulationError
from repro.gossip import (
    EpidemicSimulator,
    Feedback,
    ViewSampler,
    run_dissemination,
)


def test_rejects_bad_config():
    with pytest.raises(SimulationError):
        EpidemicSimulator("ltnc", 1, 8)
    with pytest.raises(SimulationError):
        EpidemicSimulator("ltnc", 4, 8, source_pushes=0)
    with pytest.raises(SimulationError):
        EpidemicSimulator("bogus", 4, 8)


@pytest.mark.parametrize("scheme", ["wc", "rlnc", "ltnc"])
def test_all_schemes_converge_symbolic(scheme):
    result = run_dissemination(
        scheme, n_nodes=12, k=24, seed=1, max_rounds=4000
    )
    assert result.all_complete
    assert result.rounds <= 4000
    assert result.sessions >= result.data_transfers
    assert result.data_transfers == (
        result.useful_transfers + result.redundant_transfers
    )


@pytest.mark.parametrize("scheme", ["wc", "rlnc", "ltnc"])
def test_content_recovered_bit_for_bit(scheme):
    k, m = 16, 8
    content = make_content(k, m, rng=2)
    sim = EpidemicSimulator(
        scheme, n_nodes=8, k=k, content=content, seed=3, max_rounds=4000
    )
    result = sim.run()
    assert result.all_complete
    for node in sim.nodes:
        assert np.array_equal(node.decoded_content(), content)


def test_exact_detection_gives_zero_overhead():
    """WC and RLNC abort every redundant transfer: overhead 0 (§IV-B)."""
    for scheme in ("wc", "rlnc"):
        result = run_dissemination(
            scheme, n_nodes=10, k=16, seed=4, max_rounds=4000
        )
        assert result.all_complete
        assert result.overhead() == 0.0


def test_ltnc_overhead_positive_but_bounded():
    result = run_dissemination(
        "ltnc", n_nodes=16, k=64, seed=5, max_rounds=8000
    )
    assert result.all_complete
    assert 0.0 < result.overhead() < 2.5


def test_scheme_ordering_matches_paper():
    """RLNC fastest, LTNC close behind, WC far behind (Fig. 7a/7b)."""
    times = {}
    for scheme in ("wc", "rlnc", "ltnc"):
        result = run_dissemination(
            scheme, n_nodes=16, k=32, seed=6, max_rounds=8000
        )
        assert result.all_complete
        times[scheme] = result.average_completion_round()
    assert times["rlnc"] < times["ltnc"] < times["wc"]


def test_feedback_none_ships_everything():
    result = run_dissemination(
        "ltnc",
        n_nodes=8,
        k=16,
        seed=7,
        feedback=Feedback.NONE,
        max_rounds=4000,
    )
    assert result.all_complete
    assert result.aborted == 0
    assert result.data_transfers == result.sessions


def test_full_feedback_no_slower_than_binary():
    rounds = {}
    for feedback in (Feedback.BINARY, Feedback.FULL):
        result = run_dissemination(
            "ltnc",
            n_nodes=12,
            k=48,
            seed=8,
            feedback=feedback,
            max_rounds=8000,
        )
        assert result.all_complete
        rounds[feedback] = result.average_completion_round()
    # Smart construction targets innovative packets; it must not hurt.
    assert rounds[Feedback.FULL] <= rounds[Feedback.BINARY] * 1.3


def test_convergence_series_monotone():
    result = run_dissemination(
        "ltnc", n_nodes=10, k=24, seed=9, max_rounds=4000
    )
    series = result.series_completed
    assert all(b >= a for a, b in zip(series, series[1:]))
    assert series[-1] == 1.0
    assert len(series) == result.rounds


def test_view_sampler_network_still_converges():
    sampler = ViewSampler(12, view_size=4, renewal_period=2, rng=10)
    result = run_dissemination(
        "ltnc", n_nodes=12, k=24, seed=11, sampler=sampler, max_rounds=6000
    )
    assert result.all_complete


def test_deterministic_given_seed():
    a = run_dissemination("ltnc", n_nodes=8, k=16, seed=12, max_rounds=4000)
    b = run_dissemination("ltnc", n_nodes=8, k=16, seed=12, max_rounds=4000)
    assert a.rounds == b.rounds
    assert a.sessions == b.sessions
    assert a.completion_rounds == b.completion_rounds


def test_counters_collected():
    result = run_dissemination(
        "ltnc", n_nodes=8, k=16, seed=13, max_rounds=4000
    )
    assert result.decode_ops.get("bp_edge") > 0
    assert result.recode_ops.get("rng_draw") > 0


def test_aggressiveness_delays_recoding():
    eager = run_dissemination(
        "ltnc",
        n_nodes=10,
        k=32,
        seed=14,
        node_kwargs={"aggressiveness": 0.01},
        max_rounds=8000,
    )
    lazy = run_dissemination(
        "ltnc",
        n_nodes=10,
        k=32,
        seed=14,
        node_kwargs={"aggressiveness": 0.9},
        max_rounds=8000,
    )
    assert eager.all_complete and lazy.all_complete
    # Waiting for 90 % of the content before helping slows the epidemic.
    assert eager.average_completion_round() < lazy.average_completion_round()
