"""Golden regression tests for the scenario presets.

Each preset runs its ``quick`` profile with a pinned seed; the key
metrics are asserted against checked-in golden values with tolerances
wide enough to absorb cross-platform numpy stream differences but
tight enough to catch a changed default, a broken channel hook, or a
reshuffled seed tree.  Structural expectations (churn storms actually
churn, multihop links actually lose, warm caches actually help) are
asserted exactly.
"""

import pytest

from repro.experiments.scale import PROFILES
from repro.scenarios import TrialRunner, get_preset

QUICK = PROFILES["quick"]
SEED = 2010
TRIALS = 3

#: mean over 3 pinned-seed quick trials, recorded at introduction time.
GOLDEN = {
    "baseline": {"rounds": 66.67, "average_completion_round": 52.31, "overhead": 0.8663},
    "multihop_lossy": {"rounds": 80.67, "average_completion_round": 57.33, "overhead": 1.0868},
    "edge_cache": {"rounds": 45.67, "average_completion_round": 28.33, "overhead": 0.6259},
    "churn": {"rounds": 90.67, "average_completion_round": 58.47, "overhead": 0.7483},
    "powerline_multihop": {"rounds": 93.33, "average_completion_round": 71.19, "overhead": 1.2856},
    "scalefree_p2p": {"rounds": 103.67, "average_completion_round": 66.92, "overhead": 0.9175},
    "sensor_grid": {"rounds": 87.67, "average_completion_round": 62.72, "overhead": 1.1562},
    "smallworld_gossip": {"rounds": 73.33, "average_completion_round": 55.89, "overhead": 0.9349},
    "zipf_catalogue": {"rounds": 156.00, "average_completion_round": 80.40, "overhead": 0.9175},
    "edge_cache_catalogue": {"rounds": 169.00, "average_completion_round": 96.08, "overhead": 0.9948},
    "striped_vod": {"rounds": 286.67, "average_completion_round": 177.65, "overhead": 1.0616},
    "sparse_rlnc": {"rounds": 73.00, "average_completion_round": 45.97, "overhead": 0.0},
    "large_overlay": {"rounds": 77.67, "average_completion_round": 43.48, "overhead": 1.1806},
}


@pytest.fixture(scope="module")
def aggregates():
    runner = TrialRunner(n_workers=1)
    specs = [get_preset(name, QUICK) for name in GOLDEN]
    return runner.run_grid(specs, TRIALS, master_seed=SEED)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_preset_completes_fully(aggregates, name):
    summary = aggregates[name].metrics_summary()
    assert summary["completed_fraction"]["mean"] == 1.0
    assert summary["completed_fraction"]["min"] == 1.0


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_preset_matches_golden_metrics(aggregates, name):
    summary = aggregates[name].metrics_summary()
    golden = GOLDEN[name]
    assert summary["rounds"]["mean"] == pytest.approx(golden["rounds"], rel=0.35)
    assert summary["average_completion_round"]["mean"] == pytest.approx(
        golden["average_completion_round"], rel=0.35
    )
    assert summary["overhead"]["mean"] == pytest.approx(
        golden["overhead"], rel=0.5
    )


def test_churn_preset_actually_churns(aggregates):
    summary = aggregates["churn"].metrics_summary()
    assert summary["churn_events"]["min"] >= 1


def test_multihop_preset_actually_loses(aggregates):
    summary = aggregates["multihop_lossy"].metrics_summary()
    assert summary["lost_transfers"]["min"] >= 1
    # Lossy links slow dissemination relative to the clean baseline.
    baseline = aggregates["baseline"].metrics_summary()
    assert summary["rounds"]["mean"] > baseline["rounds"]["mean"]


def test_edge_cache_preset_beats_cold_start(aggregates):
    cached = aggregates["edge_cache"].metrics_summary()
    baseline = aggregates["baseline"].metrics_summary()
    assert cached["rounds"]["mean"] < baseline["rounds"]["mean"]
    assert cached["overhead"]["mean"] < baseline["overhead"]["mean"]


def test_multihop_topology_presets_actually_lose(aggregates):
    # Hop-derived loss must bite on every lossy structured overlay.
    for name in ("powerline_multihop", "sensor_grid"):
        summary = aggregates[name].metrics_summary()
        assert summary["lost_transfers"]["min"] >= 1


def test_smallworld_shortcuts_beat_the_feeder_line(aggregates):
    # Small-world rewiring + escapes must outrun the diameter-bound line.
    smallworld = aggregates["smallworld_gossip"].metrics_summary()
    line = aggregates["powerline_multihop"].metrics_summary()
    assert smallworld["rounds"]["mean"] < line["rounds"]["mean"]


def test_sparse_rlnc_exact_check_means_zero_overhead(aggregates):
    # The density-limited scheme inherits RLNC's exact innovation
    # check, so under binary feedback its overhead is identically zero
    # (§IV-B) — an exact structural property, not a tolerance.
    summary = aggregates["sparse_rlnc"].metrics_summary()
    assert summary["overhead"]["max"] == 0.0


def test_catalogue_presets_complete_every_content(aggregates):
    # Per-content completion, not just the aggregate, must reach 1.0.
    for name in ("zipf_catalogue", "edge_cache_catalogue", "striped_vod"):
        summary = aggregates[name].metrics_summary()
        spec = aggregates[name].scenario
        for content in spec.content.resolve(spec.k, spec.scheme):
            key = f"content:{content.name}:completed_fraction"
            assert summary[key]["mean"] == 1.0, (name, key)


def test_zipf_head_completes_no_later_than_tail(aggregates):
    # Popularity-weighted origin scheduling plus more interested
    # recoders: the catalogue's head must not lag its tail.
    summary = aggregates["zipf_catalogue"].metrics_summary()
    head = summary["content:c0:average_completion_round"]["mean"]
    tail = summary["content:c3:average_completion_round"]["mean"]
    assert head <= tail


def test_edge_caches_actually_serve(aggregates):
    summary = aggregates["edge_cache_catalogue"].metrics_summary()
    assert summary["cache_hit_ratio"]["min"] > 0.0
    assert summary["cache_stored"]["min"] > 0
    # Catalogue traffic is carried by the overlay, not the origin alone.
    assert summary["edge_served_fraction"]["min"] > 0.0
