"""Unit tests for the packets-by-degree index (core/degree_index.py)."""

import pytest

from repro.core.degree_index import DegreeIndex
from repro.errors import DimensionError


def test_rejects_bad_k():
    with pytest.raises(DimensionError):
        DegreeIndex(0)


def test_empty_index():
    idx = DegreeIndex(8)
    assert idx.n(1) == 0
    assert idx.n(2) == 0
    assert idx.max_degree() == 0
    assert idx.total_packets() == 0
    assert list(idx.degrees_present()) == []
    assert idx.degree_mass(8) == 0


def test_add_and_query_packets():
    idx = DegreeIndex(16)
    idx.add_packet(0, 3)
    idx.add_packet(1, 3)
    idx.add_packet(2, 5)
    assert idx.n(3) == 2
    assert idx.n(5) == 1
    assert idx.items_of_degree(3) == {0, 1}
    assert idx.max_degree() == 5
    assert list(idx.degrees_present()) == [3, 5]
    idx.check_invariants()


def test_add_packet_rejects_degree_below_two():
    idx = DegreeIndex(8)
    with pytest.raises(DimensionError):
        idx.add_packet(0, 1)


def test_add_packet_rejects_duplicate_pid():
    idx = DegreeIndex(8)
    idx.add_packet(0, 2)
    with pytest.raises(DimensionError):
        idx.add_packet(0, 3)


def test_update_moves_between_buckets():
    idx = DegreeIndex(16)
    idx.add_packet(7, 4)
    idx.update_packet(7, 2)
    assert idx.n(4) == 0
    assert idx.n(2) == 1
    assert idx.degree_of(7) == 2
    idx.check_invariants()


def test_update_same_degree_is_noop():
    idx = DegreeIndex(16)
    idx.add_packet(7, 4)
    idx.update_packet(7, 4)
    assert idx.n(4) == 1
    idx.check_invariants()


def test_remove_packet():
    idx = DegreeIndex(16)
    idx.add_packet(1, 2)
    idx.add_packet(2, 2)
    idx.remove_packet(1)
    assert idx.items_of_degree(2) == {2}
    idx.remove_packet(2)
    assert idx.n(2) == 0
    assert idx.max_degree() == 0
    idx.check_invariants()


def test_decoded_natives_are_degree_one():
    idx = DegreeIndex(16)
    idx.add_decoded(3)
    idx.add_decoded(9)
    assert idx.n(1) == 2
    assert idx.items_of_degree(1) == {3, 9}
    assert idx.decoded_natives() == {3, 9}
    assert idx.max_degree() == 1
    assert list(idx.degrees_present()) == [1]


def test_add_decoded_bounds():
    idx = DegreeIndex(4)
    with pytest.raises(DimensionError):
        idx.add_decoded(4)
    with pytest.raises(DimensionError):
        idx.add_decoded(-1)


def test_degree_mass_matches_paper_example():
    # {x1+x2+x3, x1+x3, x2+x5}: mass = 2*2 + 3 = 7 (paper §III-B1).
    idx = DegreeIndex(8)
    idx.add_packet(0, 3)
    idx.add_packet(1, 2)
    idx.add_packet(2, 2)
    assert idx.degree_mass(3) == 7
    assert idx.degree_mass(2) == 4  # only the two degree-2 packets
    assert idx.degree_mass(1) == 0
    idx.add_decoded(0)
    assert idx.degree_mass(1) == 1
    assert idx.degree_mass(3) == 8


def test_mixed_degrees_present_sorted():
    idx = DegreeIndex(32)
    idx.add_packet(0, 9)
    idx.add_packet(1, 2)
    idx.add_decoded(5)
    assert list(idx.degrees_present()) == [1, 2, 9]
    assert idx.total_packets() == 3
