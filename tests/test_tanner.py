"""Tests for the Tanner graph structure and peeling mechanics."""

import numpy as np
import pytest

from repro.costmodel import OpCounter
from repro.errors import DimensionError
from repro.lt.tanner import DropPolicy, TannerGraph, TannerListener


class RecordingListener(TannerListener):
    """Captures the event stream for assertions."""

    def __init__(self):
        self.events = []

    def on_packet_stored(self, pid, support):
        self.events.append(("stored", pid, frozenset(support)))

    def on_packet_degree_changed(self, pid, support):
        self.events.append(("degree", pid, frozenset(support)))

    def on_packet_removed(self, pid, reason):
        self.events.append(("removed", pid, reason))

    def on_native_decoded(self, index):
        self.events.append(("decoded", index))


class DropPairs(DropPolicy):
    """Drops every degree-2 packet — for testing the policy hook."""

    def should_drop(self, support):
        return len(support) == 2


def payload(*vals):
    return np.array(vals, dtype=np.uint8)


class TestInsertion:
    def test_degree_one_decodes_immediately(self):
        g = TannerGraph(4)
        pid, decoded = g.insert({2}, payload(9))
        assert pid is None and decoded == [2]
        assert g.is_decoded(2)
        assert np.array_equal(g.native_payload(2), payload(9))

    def test_degree_two_is_stored(self):
        g = TannerGraph(4)
        pid, decoded = g.insert({0, 1}, None)
        assert pid is not None and decoded == []
        assert g.packet_support(pid) == {0, 1}
        assert g.stored_count == 1

    def test_empty_support_is_noop(self):
        g = TannerGraph(4)
        assert g.insert(set(), None) == (None, [])

    def test_out_of_range_native_rejected(self):
        g = TannerGraph(4)
        with pytest.raises(DimensionError):
            g.insert({4}, None)

    def test_non_reduced_insert_rejected(self):
        g = TannerGraph(4)
        g.insert({1}, None)
        with pytest.raises(DimensionError):
            g.insert({1, 2}, None)

    def test_k_validation(self):
        with pytest.raises(DimensionError):
            TannerGraph(0)


class TestPeeling:
    def test_cascade_through_chain(self):
        # y1 = x0^x1, y2 = x1^x2; decoding x0 must cascade to x1 and x2.
        g = TannerGraph(3)
        g.insert({0, 1}, payload(3))  # x0 ^ x1 = 3
        g.insert({1, 2}, payload(6))  # x1 ^ x2 = 6
        _, decoded = g.insert({0}, payload(1))  # x0 = 1
        assert set(decoded) == {0, 1, 2}
        assert np.array_equal(g.native_payload(1), payload(2))  # 3 ^ 1
        assert np.array_equal(g.native_payload(2), payload(4))  # 6 ^ 2
        assert g.stored_count == 0
        assert g.is_complete()

    def test_degree_three_reduces_stepwise(self):
        g = TannerGraph(4)
        pid, _ = g.insert({0, 1, 2}, None)
        g.insert({0}, None)
        assert g.packet_support(pid) == {1, 2}
        g.insert({1}, None)
        assert g.is_decoded(2)
        assert g.stored_count == 0

    def test_duplicate_packet_empties(self):
        g = TannerGraph(4)
        g.insert({0, 1}, None)
        pid2, _ = g.insert({0, 1}, None)  # same combination again
        _, decoded = g.insert({0}, None)
        # First packet decodes x1; second reduces to degree 0 (dependent).
        assert set(decoded) == {0, 1}
        assert g.stored_count == 0

    def test_invariants_after_random_workload(self):
        rng = np.random.default_rng(0)
        g = TannerGraph(12)
        for _ in range(60):
            size = int(rng.integers(1, 5))
            support = set(
                int(i) for i in rng.choice(12, size=size, replace=False)
            )
            support = {i for i in support if not g.is_decoded(i)}
            if support:
                g.insert(support, None)
            g.check_invariants()


class TestEvents:
    def test_event_stream_for_cascade(self):
        g = TannerGraph(3)
        listener = RecordingListener()
        g.add_listener(listener)
        pid, _ = g.insert({0, 1}, None)
        g.insert({0}, None)
        kinds = [e[0] for e in listener.events]
        assert kinds == ["stored", "decoded", "removed", "decoded"]
        assert ("removed", pid, "decoded") in listener.events

    def test_degree_change_event(self):
        g = TannerGraph(4)
        listener = RecordingListener()
        g.add_listener(listener)
        pid, _ = g.insert({0, 1, 2}, None)
        g.insert({0}, None)
        assert ("degree", pid, frozenset({1, 2})) in listener.events

    def test_duplicate_pair_both_consumed(self):
        # Two copies of x0^x1: peeling x0 reduces both to degree 1, each
        # is removed as "decoded"; x1 is decoded exactly once.  (A stored
        # packet can never reach degree 0 through peeling, since storage
        # starts at degree >= 2 and edges peel one at a time.)
        g = TannerGraph(4)
        listener = RecordingListener()
        g.add_listener(listener)
        pid1, _ = g.insert({0, 1}, None)
        pid2, _ = g.insert({0, 1}, None)
        g.insert({0}, None)
        assert ("removed", pid1, "decoded") in listener.events
        assert ("removed", pid2, "decoded") in listener.events
        assert listener.events.count(("decoded", 1)) == 1


class TestDropPolicy:
    def test_policy_drops_on_insert(self):
        g = TannerGraph(4)
        g.drop_policy = DropPairs()
        pid, decoded = g.insert({0, 1}, None)
        assert pid is None and decoded == []
        assert g.stored_count == 0

    def test_policy_drops_on_degree_fall(self):
        g = TannerGraph(4)
        listener = RecordingListener()
        g.add_listener(listener)
        g.drop_policy = DropPairs()
        pid, _ = g.insert({0, 1, 2}, None)  # degree 3: kept
        assert pid is not None
        g.insert({0}, None)  # reduces pid to degree 2 -> dropped
        assert g.stored_count == 0
        assert ("removed", pid, "redundant") in listener.events

    def test_policy_not_applied_above_three(self):
        g = TannerGraph(8)

        class DropAll(DropPolicy):
            def should_drop(self, support):
                return True

        g.drop_policy = DropAll()
        pid, _ = g.insert({0, 1, 2, 3}, None)  # degree 4: policy not asked
        assert pid is not None


class TestAccounting:
    def test_bp_edges_counted(self):
        counter = OpCounter()
        g = TannerGraph(4, counter=counter)
        g.insert({0, 1}, None)
        g.insert({0}, None)
        assert counter.get("bp_edge") == 1
        assert counter.get("payload_xor") >= 1

    def test_remove_packet_unindexes(self):
        g = TannerGraph(4)
        pid, _ = g.insert({0, 1, 2}, None)
        g.remove_packet(pid)
        assert g.stored_count == 0
        g.check_invariants()
        # natives are free again
        g.insert({0}, None)
        assert g.is_decoded(0)
