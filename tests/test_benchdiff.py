"""Tests for the bench-trajectory regression gate (benchdiff).

The gate's contracts: a report compared with itself passes (exit 0); an
injected ≥2× slowdown on any rate row fails (exit 1); ``--warn-only``
reports the same rows but exits 0 (with CI annotations); schema-invalid
input exits 2 before any comparison; ``--history`` diffs the two most
recent reports; ``--json`` writes atomically.
"""

import json

import pytest

from repro.experiments import benchdiff
from repro.experiments.benchdiff import (
    EXIT_INVALID,
    EXIT_OK,
    EXIT_REGRESSION,
    diff_reports,
    extract_rows,
    history_window,
    latest_pair,
    trend_diff,
)
from repro.experiments.perfbench import run_perfbench


@pytest.fixture(scope="module")
def report():
    return run_perfbench(
        profile="quick",
        seed=7,
        ks=(16,),
        schemes=("wc",),
        include_baseline=False,
    )


def _write(path, payload):
    path.write_text(json.dumps(payload, sort_keys=True))
    return str(path)


def _slowed(report, factor=2.0):
    slow = json.loads(json.dumps(report))
    entry = slow["microbench"]["rref_insert_reduce"]["k=16"]
    entry["ops_per_sec"] = round(entry["ops_per_sec"] / factor, 1)
    return slow


# -- row extraction ------------------------------------------------------
def test_extract_rows_flattens_every_rate_family(report):
    rows = extract_rows(report)
    assert "microbench.rref_insert_reduce[k=16].ops_per_sec" in rows
    assert "microbench.bitvector[k=16].ixor_per_sec" in rows
    assert "microbench.decode[k=16].gauss_packets_per_sec" in rows
    assert "microbench.decode[k=16].bp_packets_per_sec" in rows
    assert "end_to_end[wc].rounds_per_sec" in rows
    assert "fleet.trials_per_sec" in rows
    assert all(v > 0 for v in rows.values())
    # Absolute wall times never become rows.
    assert not any("seconds" in name for name in rows)


def test_diff_reports_flags_slowdown_not_speedup(report):
    slow = _slowed(report, factor=2.0)
    diff = diff_reports(report, slow)
    regressed = [r for r in diff["rows"] if r["regressed"]]
    assert [r["name"] for r in regressed] == [
        "microbench.rref_insert_reduce[k=16].ops_per_sec"
    ]
    assert regressed[0]["ratio"] == pytest.approx(0.5, abs=0.01)
    # The mirror comparison is a speedup: no regression.
    assert diff_reports(slow, report)["n_regressed"] == 0
    # Self-comparison is clean.
    assert diff_reports(report, report)["n_regressed"] == 0


def test_diff_reports_tolerance_is_configurable(report):
    mild = _slowed(report, factor=1.3)
    assert diff_reports(report, mild, max_slowdown=1.5)["n_regressed"] == 0
    assert diff_reports(report, mild, max_slowdown=1.1)["n_regressed"] == 1
    with pytest.raises(ValueError, match="max_slowdown"):
        diff_reports(report, report, max_slowdown=0.5)


def test_diff_reports_tolerates_schema_growth(report):
    grown = json.loads(json.dumps(report))
    grown["end_to_end"]["new_scheme"] = {"rounds_per_sec": 10.0}
    diff = diff_reports(report, grown)
    assert diff["n_regressed"] == 0
    assert diff["only_new"] == ["end_to_end[new_scheme].rounds_per_sec"]


# -- CLI -----------------------------------------------------------------
def test_cli_self_compare_ok_and_slowdown_fails(tmp_path, report, capsys):
    old = _write(tmp_path / "old.json", report)
    new = _write(tmp_path / "new.json", _slowed(report))
    assert benchdiff.main([old, old]) == EXIT_OK
    capsys.readouterr()
    assert benchdiff.main([old, new]) == EXIT_REGRESSION
    out = capsys.readouterr().out
    assert "REGRESSED" in out and "1/" in out


def test_cli_warn_only_annotates_but_passes(tmp_path, report, capsys):
    old = _write(tmp_path / "old.json", report)
    new = _write(tmp_path / "new.json", _slowed(report))
    assert benchdiff.main([old, new, "--warn-only"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "::warning::" in out and "REGRESSED" in out


def test_cli_rejects_invalid_reports(tmp_path, report, capsys):
    old = _write(tmp_path / "old.json", report)
    broken = json.loads(json.dumps(report))
    del broken["microbench"]
    bad = _write(tmp_path / "bad.json", broken)
    assert benchdiff.main([old, bad]) == EXIT_INVALID
    assert "invalid" in capsys.readouterr().err
    missing = str(tmp_path / "nope.json")
    assert benchdiff.main([old, missing]) == EXIT_INVALID
    not_json = tmp_path / "junk.json"
    not_json.write_text("{")
    assert benchdiff.main([old, str(not_json)]) == EXIT_INVALID


def test_cli_json_output_is_atomic(tmp_path, report):
    old = _write(tmp_path / "old.json", report)
    out = tmp_path / "diff.json"
    assert benchdiff.main([old, old, "--json", str(out)]) == EXIT_OK
    payload = json.loads(out.read_text())
    assert payload["suite"] == "ltnc-benchdiff"
    assert payload["n_regressed"] == 0 and payload["n_rows"] > 0
    assert not list(tmp_path.glob("*.tmp*"))


def test_cli_history_mode_uses_two_most_recent(tmp_path, report, capsys):
    history = tmp_path / "history"
    history.mkdir()
    _write(history / "bench-20260101T000000Z.json", _slowed(report, 4.0))
    _write(history / "bench-20260102T000000Z.json", report)
    _write(history / "bench-20260103T000000Z.json", _slowed(report))
    # Diffs day 2 -> day 3 (the 4x-slow day-1 report is out of window).
    assert benchdiff.main(["--history", str(history)]) == EXIT_REGRESSION
    assert "bench-20260102T000000Z" in capsys.readouterr().out
    # A single report is not enough history.
    solo = tmp_path / "solo"
    solo.mkdir()
    _write(solo / "bench-1.json", report)
    assert benchdiff.main(["--history", str(solo)]) == EXIT_INVALID
    with pytest.raises(ValueError, match="at least two"):
        latest_pair(solo)


def test_history_tie_break_is_deterministic(tmp_path, report):
    # Two reports sharing one UTC stamp (same-second rerun, or a copy
    # made by hand): the pair must not depend on directory-listing
    # order.  Lexicographic filename breaks the tie — "...Z.rerun.json"
    # sorts after the plain "...Z.json", so it is the newer side.
    history = tmp_path / "history"
    history.mkdir()
    _write(history / "bench-20260101T000000Z.json", report)
    _write(history / "bench-20260102T000000Z.json", report)
    _write(history / "bench-20260102T000000Z.rerun.json", report)
    old, new = latest_pair(history)
    assert old.name == "bench-20260102T000000Z.json"
    assert new.name == "bench-20260102T000000Z.rerun.json"
    # The stamp governs recency even when a prefix would sort wrong
    # lexicographically: "archive-..." < "bench-..." by name, but its
    # stamp is the newest of all three.
    _write(history / "archive-20260103T000000Z.json", report)
    old, new = latest_pair(history)
    assert new.name == "archive-20260103T000000Z.json"
    assert old.name == "bench-20260102T000000Z.rerun.json"


def _slowed_all(report, factor):
    """Scale every extracted rate down by *factor* (uniform drift)."""
    slow = json.loads(json.dumps(report))
    for section in slow["microbench"].values():
        for entry in section.values():
            for key, value in entry.items():
                if key.endswith("_per_sec"):
                    entry[key] = value / factor
    for entry in slow["end_to_end"].values():
        entry["rounds_per_sec"] /= factor
    slow["fleet"]["trials_per_sec"] /= factor
    for row in slow.get("n_scaling", {}).values():
        for side in ("scalar", "batched"):
            if side in row:
                row[side]["rounds_per_sec"] /= factor
    return slow


# -- trend window --------------------------------------------------------
def test_trend_diff_catches_drift_pairwise_diffs_miss(report):
    # Four reports, each step 1.25x slower: every pairwise diff is
    # inside the 1.5x tolerance, but the cumulative ~1.95x drift trips
    # the window-median trend.
    steps = [_slowed_all(report, 1.25**i) for i in range(4)]
    for old, new in zip(steps, steps[1:]):
        assert diff_reports(old, new)["n_regressed"] == 0
    trend = trend_diff(steps)
    assert trend["window"] == 4
    assert trend["n_rows"] > 0
    assert trend["n_regressed"] == trend["n_rows"]  # uniform drift
    # Median baseline: one slow outlier mid-window does not regress a
    # healthy newest report.
    noisy = [report, _slowed_all(report, 4.0), report, report]
    assert trend_diff(noisy)["n_regressed"] == 0
    with pytest.raises(ValueError, match="at least two"):
        trend_diff([report])
    with pytest.raises(ValueError, match="max_slowdown"):
        trend_diff(steps, max_slowdown=0.9)


def test_history_window_selection(tmp_path, report):
    history = tmp_path / "history"
    history.mkdir()
    names = [f"bench-2026010{d}T000000Z.json" for d in range(1, 5)]
    for name in names:
        _write(history / name, report)
    assert [p.name for p in history_window(history, 3)] == names[-3:]
    # Oversized window: early trajectories use all available history.
    assert [p.name for p in history_window(history, 99)] == names
    with pytest.raises(ValueError, match="window"):
        history_window(history, 1)
    solo = tmp_path / "solo"
    solo.mkdir()
    _write(solo / "bench-1.json", report)
    with pytest.raises(ValueError, match="at least two"):
        history_window(solo, 3)


def test_cli_window_mode_flags_trend_drift(tmp_path, report, capsys):
    history = tmp_path / "history"
    history.mkdir()
    for i in range(4):
        _write(
            history / f"bench-2026010{i + 1}T000000Z.json",
            _slowed_all(report, 1.25**i),
        )
    # The latest pair alone is clean...
    assert benchdiff.main(["--history", str(history)]) == EXIT_OK
    capsys.readouterr()
    # ...but the 4-report window catches the drift.
    out_json = tmp_path / "diff.json"
    assert (
        benchdiff.main(
            ["--history", str(history), "--window", "4", "--json", str(out_json)]
        )
        == EXIT_REGRESSION
    )
    out = capsys.readouterr().out
    assert "trend over last 4 reports" in out and "DRIFTED" in out
    payload = json.loads(out_json.read_text())
    assert payload["trend"]["suite"] == "ltnc-benchdiff-trend"
    assert payload["trend"]["n_regressed"] > 0
    # warn-only: same annotations, exit 0.
    assert (
        benchdiff.main(
            ["--history", str(history), "--window", "4", "--warn-only"]
        )
        == EXIT_OK
    )
    assert "::warning::bench trend drift" in capsys.readouterr().out


def test_cli_window_argument_validation(tmp_path, report, capsys):
    old = _write(tmp_path / "old.json", report)
    with pytest.raises(SystemExit):
        benchdiff.main([old, old, "--window", "3"])  # needs --history
    capsys.readouterr()
    with pytest.raises(SystemExit):
        benchdiff.main(["--history", str(tmp_path), "--window", "1"])
    capsys.readouterr()


def test_cli_argument_validation(tmp_path, report, capsys):
    old = _write(tmp_path / "old.json", report)
    with pytest.raises(SystemExit):
        benchdiff.main([old])  # one path, no --history
    capsys.readouterr()
    with pytest.raises(SystemExit):
        benchdiff.main([old, old, "--history", str(tmp_path)])
    capsys.readouterr()
    with pytest.raises(SystemExit):
        benchdiff.main([old, old, "--max-slowdown", "0.5"])
