"""Cross-cutting properties: belief propagation vs the exact rank oracle.

Belief propagation is a *restricted* decoder — peeling recovers a
subset of what Gaussian elimination could — which gives sharp
invariants to pin down:

* natives decoded by BP are always within the span of received vectors
  (``decoded_count <= rank``);
* if BP completes, the received set has full rank;
* when both complete, the recovered bytes agree exactly;
* a packet BP classifies as redundant (reduced to degree zero or
  dropped by Algorithm 3) is never innovative for the oracle.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.packet import EncodedPacket, make_content
from repro.core.node import LtncNode
from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import IncrementalRref
from repro.lt.decoder import BeliefPropagationDecoder
from repro.lt.distributions import RobustSoliton, TruncatedUniform
from repro.lt.encoder import LTEncoder


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(2, 24),
    supports=st.lists(
        st.sets(st.integers(0, 23), min_size=1, max_size=6),
        min_size=1,
        max_size=40,
    ),
)
def test_bp_decodes_within_span(k, supports):
    decoder = BeliefPropagationDecoder(k)
    oracle = IncrementalRref(k)
    for raw in supports:
        support = {x % k for x in raw}
        packet = EncodedPacket(BitVector.from_indices(k, support))
        outcome = decoder.receive(packet)
        innovative = oracle.insert(packet.vector.copy())
        if outcome.redundant:
            assert not innovative, (
                f"BP flagged {sorted(support)} redundant but oracle says "
                "innovative"
            )
        assert decoder.decoded_count <= oracle.rank
    if decoder.is_complete():
        assert oracle.is_full_rank()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_bp_and_gauss_recover_identical_bytes(seed):
    k, m = 24, 8
    content = make_content(k, m, rng=seed)
    encoder = LTEncoder(k, RobustSoliton(k), payloads=content, rng=seed + 1)
    bp = BeliefPropagationDecoder(k)
    gauss = IncrementalRref(k, payload_nbytes=m)
    budget = 30 * k
    while not bp.is_complete() and budget:
        packet = encoder.next_packet()
        bp.receive(packet)
        gauss.insert(packet.vector, packet.payload)
        budget -= 1
    if bp.is_complete():
        assert gauss.is_full_rank()
        assert np.array_equal(
            bp.recovered_content(), np.stack(gauss.decode())
        )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_ltnc_drop_policy_is_sound_on_live_stream(seed):
    """Algorithm 3 drops on a live node never discard innovation."""
    k = 20
    encoder = LTEncoder(k, RobustSoliton(k), rng=seed)
    node = LtncNode(0, k, rng=seed + 1, detect_redundancy=True)
    oracle = IncrementalRref(k)
    for _ in range(3 * k):
        packet = encoder.next_packet()
        innovative_before = oracle.is_innovative(packet.vector)
        useful = node.receive(packet)
        oracle.insert(packet.vector.copy())
        if not useful:
            assert not innovative_before
        assert node.decoded_count <= oracle.rank


def test_soliton_beats_uniform_for_bp():
    """The structural claim behind the whole paper, at the decoder.

    With the same packet budget, a Robust Soliton stream BP-decodes
    far more natives than a degree-matched uniform stream.
    """
    k, budget = 96, 180
    decoded = {}
    for name, dist in (
        ("soliton", RobustSoliton(k)),
        ("uniform", TruncatedUniform(k, dmax=int(RobustSoliton(k).mean() * 2))),
    ):
        encoder = LTEncoder(k, dist, rng=5)
        decoder = BeliefPropagationDecoder(k)
        for _ in range(budget):
            decoder.receive(encoder.next_packet())
        decoded[name] = decoder.decoded_count
    assert decoded["soliton"] > 2 * decoded["uniform"]


def test_recoded_stream_is_as_decodable_as_source_stream():
    """LTNC's recoded packets keep BP decodability (the contribution)."""
    k = 64
    encoder = LTEncoder(k, RobustSoliton(k), rng=6)
    relay = LtncNode(0, k, rng=7)
    for _ in range(int(1.6 * k)):
        relay.receive(encoder.next_packet())
    sink = BeliefPropagationDecoder(k)
    budget = 8 * k
    while not sink.is_complete() and budget:
        sink.receive(relay.make_packet())
        budget -= 1
    assert sink.is_complete()
