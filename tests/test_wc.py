"""Tests for the without-coding baseline."""

import numpy as np
import pytest

from repro.coding import EncodedPacket, make_content
from repro.errors import DecodingError, DimensionError, RecodingError
from repro.wc import WcNode, default_fanout


class TestFanout:
    def test_ln_n(self):
        assert default_fanout(1000) == 7  # ceil(ln 1000) = 7
        assert default_fanout(2) == 1

    def test_small_n(self):
        assert default_fanout(1) >= 1


class TestReceive:
    def test_innovative_then_duplicate(self):
        node = WcNode(0, 4)
        p = EncodedPacket.native(4, 2, np.array([9], np.uint8))
        assert node.receive(p)
        assert not node.receive(p.copy())
        assert node.innovative_count == 1 and node.redundant_count == 1

    def test_encoded_packet_rejected(self):
        node = WcNode(0, 4)
        with pytest.raises(DimensionError):
            node.receive(EncodedPacket.combine(4, [0, 1]))

    def test_header_check(self):
        node = WcNode(0, 4)
        node.receive(EncodedPacket.native(4, 1))
        assert not node.header_is_innovative(EncodedPacket.native(4, 1).vector)
        assert node.header_is_innovative(EncodedPacket.native(4, 2).vector)

    def test_header_check_rejects_encoded(self):
        node = WcNode(0, 4)
        with pytest.raises(DimensionError):
            node.header_is_innovative(EncodedPacket.combine(4, [0, 1]).vector)

    def test_completion(self):
        node = WcNode(0, 3)
        for i in range(3):
            assert not node.is_complete()
            node.receive(EncodedPacket.native(3, i))
        assert node.is_complete()


class TestForwarding:
    def test_cannot_send_empty(self):
        node = WcNode(0, 4)
        assert not node.can_send()
        with pytest.raises(RecodingError):
            node.make_packet()

    def test_least_sent_priority(self):
        node = WcNode(0, 4, fanout=10)
        node.receive(EncodedPacket.native(4, 0))
        node.receive(EncodedPacket.native(4, 1))
        sent = [int(node.make_packet().vector.first_index()) for _ in range(4)]
        # Alternates between the two buffered packets (0 and 1).
        assert sorted(sent) == [0, 0, 1, 1]

    def test_fanout_deprioritises_saturated(self):
        node = WcNode(0, 4, fanout=1)
        node.receive(EncodedPacket.native(4, 0))
        node.make_packet()  # index 0 reaches fanout
        node.receive(EncodedPacket.native(4, 1))
        assert int(node.make_packet().vector.first_index()) == 1

    def test_buffer_eviction_stops_forwarding_not_storage(self):
        node = WcNode(0, 8, buffer_size=2)
        for i in range(4):
            node.receive(EncodedPacket.native(8, i))
        assert len(node.buffered_indices()) == 2
        assert node.buffered_indices() == [2, 3]  # oldest evicted
        assert node.innovative_count == 4  # storage unaffected

    def test_buffer_validation(self):
        with pytest.raises(DimensionError):
            WcNode(0, 4, buffer_size=0)
        with pytest.raises(DimensionError):
            WcNode(0, 4, fanout=0)


class TestSourceAndContent:
    def test_source_covers_all_natives(self):
        content = make_content(6, 3, rng=0)
        src = WcNode.as_source(6, content)
        assert src.is_complete()
        seen = set()
        for _ in range(6):
            seen.add(int(src.make_packet().vector.first_index()))
        assert seen == set(range(6))  # least-sent rotation covers everything

    def test_decoded_content_round_trip(self):
        content = make_content(5, 4, rng=2)
        src = WcNode.as_source(5, content)
        sink = WcNode(1, 5)
        for _ in range(5):
            sink.receive(src.make_packet())
        assert sink.is_complete()
        assert np.array_equal(sink.decoded_content(), content)

    def test_decoded_content_requires_completion(self):
        node = WcNode(0, 3)
        node.receive(EncodedPacket.native(3, 0, np.zeros(2, np.uint8)))
        with pytest.raises(DecodingError):
            node.decoded_content()

    def test_decoded_content_symbolic_raises(self):
        node = WcNode(0, 2)
        node.receive(EncodedPacket.native(2, 0))
        node.receive(EncodedPacket.native(2, 1))
        with pytest.raises(DecodingError):
            node.decoded_content()
