"""Tests for the self-healing storage cluster (failure injection)."""

import numpy as np
import pytest

from repro.coding.packet import make_content
from repro.errors import StorageError
from repro.storage.cluster import StorageCluster


def test_rejects_bad_config():
    with pytest.raises(StorageError):
        StorageCluster(16, 1)
    with pytest.raises(StorageError):
        StorageCluster(16, 4, slots_per_node=0)
    with pytest.raises(StorageError):
        StorageCluster(16, 4, repair_mode="bogus")


def test_initial_population():
    cluster = StorageCluster(32, 10, slots_per_node=3, rng=0)
    assert len(cluster.alive_nodes()) == 10
    assert len(cluster.stored_packets()) == 30
    assert sum(cluster.degree_histogram().values()) == 30


def test_object_readable_when_healthy():
    cluster = StorageCluster(24, 12, slots_per_node=6, rng=1)
    outcome = cluster.read_object()
    assert outcome.success
    assert outcome.packets_used >= 24


def test_content_roundtrip():
    k, m = 24, 8
    content = make_content(k, m, rng=2)
    cluster = StorageCluster(k, 12, slots_per_node=6, content=content, rng=3)
    assert np.array_equal(cluster.read_content(), content)


def test_fail_and_repair_cycle():
    cluster = StorageCluster(24, 12, slots_per_node=4, rng=4)
    victim = cluster.fail_random()
    assert victim not in cluster.alive_nodes()
    assert len(cluster.stored_packets()) == 44
    cluster.repair_node(victim)
    assert victim in cluster.alive_nodes()
    assert len(cluster.stored_packets()) == 48
    assert cluster.nodes[victim].generation == 1


def test_fail_guards():
    cluster = StorageCluster(16, 2, rng=5)
    cluster.fail_node(0)
    with pytest.raises(StorageError):
        cluster.fail_node(0)  # already down
    with pytest.raises(StorageError):
        cluster.fail_random()  # would kill the last node
    with pytest.raises(StorageError):
        cluster.repair_node(1)  # not down


def test_object_survives_churn_with_ltnc_repair():
    k, m = 24, 8
    content = make_content(k, m, rng=6)
    cluster = StorageCluster(
        k, 16, slots_per_node=6, content=content, repair_mode="ltnc", rng=7
    )
    cluster.churn(24)  # 1.5x the cluster size in failures
    assert np.array_equal(cluster.read_content(), content)
    assert cluster.repairs_done == 24


def test_ltnc_repair_keeps_diversity_better_than_naive():
    """Naive copy-repair accumulates duplicates; LTNC recodes fresh."""
    diversity = {}
    for mode in ("naive", "ltnc"):
        cluster = StorageCluster(
            32, 16, slots_per_node=4, repair_mode=mode, rng=8
        )
        cluster.churn(40)
        diversity[mode] = cluster.distinct_vectors()
    assert diversity["ltnc"] > diversity["naive"]


def test_ltnc_repair_preserves_low_degree_mass():
    """Repaired packets keep the RS-ish low-degree mass BP needs."""
    cluster = StorageCluster(48, 16, slots_per_node=4, repair_mode="ltnc", rng=9)
    cluster.churn(32)
    hist = cluster.degree_histogram()
    total = sum(hist.values())
    low = sum(count for degree, count in hist.items() if degree <= 2)
    assert low / total >= 0.25


def test_read_object_from_sample():
    cluster = StorageCluster(16, 20, slots_per_node=4, rng=10)
    outcome = cluster.read_object(sample_nodes=14, rng=11)
    assert outcome.nodes_contacted == 14
    # With 56 packets for k=16 the read should almost surely succeed.
    assert outcome.success


def test_symbolic_cluster_has_no_content():
    cluster = StorageCluster(16, 8, rng=12)
    with pytest.raises(StorageError):
        cluster.read_content()


# -- repair determinism --------------------------------------------------
def _churned_newcomer(repair_mode: str, seed: int, payload: bool = False):
    """Fail-and-repair one node; return (victim, its fresh packets)."""
    content = make_content(24, 8, rng=99) if payload else None
    cluster = StorageCluster(
        24,
        10,
        slots_per_node=6,
        content=content,
        repair_mode=repair_mode,
        rng=seed,
    )
    victim = cluster.fail_random()
    cluster.repair_node(victim)
    return victim, [p.copy() for p in cluster.nodes[victim].packets]


@pytest.mark.parametrize("mode", ["ltnc", "naive"])
def test_repair_is_seed_deterministic(mode):
    # Same seed => same victim and bit-identical newcomer packets, the
    # property that makes churn experiments reproducible from a seed.
    victim_a, packets_a = _churned_newcomer(mode, seed=77)
    victim_b, packets_b = _churned_newcomer(mode, seed=77)
    assert victim_a == victim_b
    assert [p.vector.key() for p in packets_a] == [
        p.vector.key() for p in packets_b
    ]


@pytest.mark.parametrize("mode", ["ltnc", "naive"])
def test_repair_payloads_are_seed_deterministic(mode):
    # The payload bytes of the recoded packets match too, not just the
    # code vectors.
    _, packets_a = _churned_newcomer(mode, seed=31, payload=True)
    _, packets_b = _churned_newcomer(mode, seed=31, payload=True)
    for pa, pb in zip(packets_a, packets_b):
        assert pa.vector.key() == pb.vector.key()
        assert np.array_equal(pa.payload, pb.payload)


@pytest.mark.parametrize("mode", ["ltnc", "naive"])
def test_repair_differs_across_seeds(mode):
    # Distinct seeds explore distinct churn paths (victim or packets).
    runs = {
        (victim, tuple(p.vector.key() for p in packets))
        for victim, packets in (
            _churned_newcomer(mode, seed=s) for s in (41, 42, 43)
        )
    }
    assert len(runs) > 1
