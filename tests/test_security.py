"""Tests for homomorphic tags and the pollution filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.packet import EncodedPacket, make_content
from repro.core.node import LtncNode
from repro.errors import DimensionError
from repro.gf2.bitvec import BitVector
from repro.lt.distributions import RobustSoliton
from repro.lt.encoder import LTEncoder
from repro.security import PollutionFilter, TagScheme


def test_rejects_bad_parameters():
    with pytest.raises(DimensionError):
        TagScheme(0)
    with pytest.raises(DimensionError):
        TagScheme(8, tag_bits=0)


def test_tag_shape_and_determinism():
    scheme = TagScheme(16, tag_bits=32, rng=0)
    payload = np.arange(16, dtype=np.uint8)
    tag = scheme.tag(payload)
    assert tag.shape == (4,)  # 32 bits packed
    assert np.array_equal(tag, scheme.tag(payload))
    with pytest.raises(DimensionError):
        scheme.tag(np.zeros(8, dtype=np.uint8))


def test_homomorphism():
    """tag(a ^ b) == tag(a) ^ tag(b) — the property recoding relies on."""
    scheme = TagScheme(32, rng=1)
    rng = np.random.default_rng(2)
    for _ in range(20):
        a = rng.integers(0, 256, 32, dtype=np.uint8)
        b = rng.integers(0, 256, 32, dtype=np.uint8)
        assert np.array_equal(
            scheme.tag(a ^ b), scheme.tag(a) ^ scheme.tag(b)
        )


def test_honest_packets_verify_through_recoding():
    k, m = 32, 16
    content = make_content(k, m, rng=3)
    scheme = TagScheme(m, rng=4)
    native_tags = scheme.tag_content(content)
    encoder = LTEncoder(k, RobustSoliton(k), payloads=content, rng=5)
    relay = LtncNode(0, k, payload_nbytes=m, rng=6)
    for _ in range(40):
        packet = encoder.next_packet()
        assert scheme.verify(packet, native_tags)
        relay.receive(packet)
    # Recoded packets — arbitrary linear combinations — still verify.
    for _ in range(60):
        assert scheme.verify(relay.make_packet(), native_tags)


def test_polluted_payload_detected():
    k, m = 16, 16
    content = make_content(k, m, rng=7)
    scheme = TagScheme(m, tag_bits=32, rng=8)
    native_tags = scheme.tag_content(content)
    encoder = LTEncoder(k, RobustSoliton(k), payloads=content, rng=9)
    rng = np.random.default_rng(10)
    detected = 0
    trials = 50
    for _ in range(trials):
        packet = encoder.next_packet()
        packet.payload[rng.integers(m)] ^= 1 + rng.integers(255)
        if not scheme.verify(packet, native_tags):
            detected += 1
    # Forging odds are 2^-32 per packet; all pollution must be caught.
    assert detected == trials


def test_symbolic_packet_cannot_verify():
    scheme = TagScheme(8, rng=11)
    packet = EncodedPacket(BitVector.from_indices(4, [0]))
    with pytest.raises(DimensionError):
        scheme.verify(packet, np.zeros((4, 4), dtype=np.uint8))


def test_pollution_filter_protects_decoder():
    """With the filter the node decodes the true content despite an
    adversary corrupting a third of the traffic; without it, the decoded
    content is wrong."""
    k, m = 24, 8
    content = make_content(k, m, rng=12)
    scheme = TagScheme(m, rng=13)
    native_tags = scheme.tag_content(content)

    def attack_stream(seed):
        encoder = LTEncoder(k, RobustSoliton(k), payloads=content, rng=seed)
        adversary = np.random.default_rng(seed + 1)
        while True:
            packet = encoder.next_packet()
            if adversary.random() < 0.33:
                packet.payload[adversary.integers(m)] ^= 0xFF
            yield packet

    # Unprotected node: decodes, but to corrupted bytes.
    bare = LtncNode(0, k, payload_nbytes=m, rng=14)
    stream = attack_stream(100)
    for _ in range(30 * k):
        bare.receive(next(stream))
        if bare.is_complete():
            break
    assert bare.is_complete()
    assert not np.array_equal(bare.decoded_content(), content)

    # Filtered node: the same attack never reaches the Tanner graph.
    inner = LtncNode(1, k, payload_nbytes=m, rng=15)
    guarded = PollutionFilter(inner, scheme, native_tags)
    stream = attack_stream(100)
    for _ in range(30 * k):
        guarded.receive(next(stream))
        if guarded.is_complete():
            break
    assert guarded.is_complete()
    assert np.array_equal(guarded.decoded_content(), content)
    assert guarded.rejected > 0
    assert guarded.accepted > 0


def test_filter_delegates_protocol():
    k, m = 8, 4
    content = make_content(k, m, rng=16)
    scheme = TagScheme(m, rng=17)
    node = LtncNode(0, k, payload_nbytes=m, rng=18)
    guarded = PollutionFilter(node, scheme, scheme.tag_content(content))
    assert guarded.k == k
    assert not guarded.is_complete()
    assert not guarded.can_send()


@settings(max_examples=30, deadline=None)
@given(
    m=st.integers(1, 24),
    tag_bits=st.sampled_from([8, 16, 32]),
    seed=st.integers(0, 2**16),
)
def test_tag_linearity_property(m, tag_bits, seed):
    scheme = TagScheme(m, tag_bits=tag_bits, rng=seed)
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, m, dtype=np.uint8)
    b = rng.integers(0, 256, m, dtype=np.uint8)
    assert np.array_equal(scheme.tag(a ^ b), scheme.tag(a) ^ scheme.tag(b))
    assert np.array_equal(
        scheme.tag(np.zeros(m, dtype=np.uint8)),
        np.zeros_like(scheme.tag(a)),
    )
