"""Property tests for the PeerSampler contract (hypothesis).

Every sampler flavour — uniform membership draws, bounded gossip
views, graph-neighbourhood draws with long-range escapes — must obey
the simulator's one invariant: ``peers(node, n, round)`` never returns
the caller itself and never returns a duplicate, for every request
size up to the membership bound, at any round.  The uniform and
topology samplers additionally promise exactly ``min(n, n_nodes - 1)``
peers per draw (the view sampler is bounded by its view size instead).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip.peer_sampling import UniformSampler, ViewSampler
from repro.topology.generators import make_graph
from repro.topology.sampling import TopologySampler


def _uniform(draw, n_nodes, seed):
    return UniformSampler(n_nodes, rng=seed)


def _view(draw, n_nodes, seed):
    return ViewSampler(
        n_nodes,
        view_size=draw(st.integers(min_value=1, max_value=2 * n_nodes)),
        renewal_period=draw(st.integers(min_value=1, max_value=4)),
        rng=seed,
    )


def _topology(draw, n_nodes, seed):
    names = ["line", "ring", "grid2d", "edge_tree", "barabasi_albert"]
    name = draw(st.sampled_from(names + (["watts_strogatz"] if n_nodes >= 3 else [])))
    params = {}
    if name == "watts_strogatz":
        params = {"k_nearest": 2, "rewire_p": draw(st.floats(0.0, 1.0))}
    graph = make_graph(name, n_nodes, rng=seed, **params)
    escape = draw(st.floats(min_value=0.0, max_value=1.0))
    return TopologySampler(graph, escape=escape, rng=seed)


@st.composite
def sampler_and_size(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    flavour = draw(st.sampled_from([_uniform, _view, _topology]))
    return flavour(draw, n_nodes, seed), n_nodes


@settings(max_examples=80, deadline=None)
@given(
    sampler_and_size(),
    st.data(),
)
def test_samplers_never_self_or_duplicate(built, data):
    sampler, n_nodes = built
    rounds = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=50),
            min_size=1,
            max_size=6,
        ).map(sorted)
    )
    for round_index in rounds:
        for node in range(n_nodes):
            for n in range(1, n_nodes):
                peers = sampler.peers(node, n, round_index)
                assert node not in peers
                assert len(peers) == len(set(peers))
                assert all(0 <= p < n_nodes for p in peers)
                assert len(peers) <= n
                if isinstance(sampler, (UniformSampler, TopologySampler)):
                    assert len(peers) == min(n, n_nodes - 1)
