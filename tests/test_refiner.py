"""Tests for Algorithm 2 — refining an encoded packet."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.packet import make_content
from repro.core.components import ConnectedComponents
from repro.core.occurrences import OccurrenceTracker
from repro.core.refiner import pair_payload, refine_packet
from repro.costmodel.counters import OpCounter
from repro.lt.tanner import TannerGraph


def _world(k, edges, decoded=(), content=None):
    """Graph + components holding degree-2 packets for the given edges."""
    counter = OpCounter()
    graph = TannerGraph(k, counter=counter)
    components = ConnectedComponents(k, counter=counter)
    for i in decoded:
        payload = content[i] if content is not None else None
        graph.insert({i}, payload)
        components.mark_decoded(i)
    for a, b in edges:
        payload = None
        if content is not None:
            payload = content[a] ^ content[b]
        pid, _ = graph.insert({a, b}, payload)
        components.add_edge(pid, a, b)
    return graph, components


def test_paper_worked_example():
    """Figure 4: z = x0+x1+x2+x3+x4 refines to x0+x1+x3+x4+x6.

    (0-indexed.)  Components: {x2, x4, x6} via edges x2+x4 and x4+x6;
    occurrences make x2 frequent and x6 rare; x2 is in z, x6 is not,
    so x2 is substituted with x6.
    """
    k = 7
    graph, components = _world(k, [(2, 4), (4, 6)])
    occ = OccurrenceTracker(k)
    # x2 appeared in 3 previous packets, x6 in none, others once.
    for support in ({2}, {2}, {2}, {0}, {1}, {3}, {4}, {5}):
        occ.record_sent(support)
    support = {0, 1, 2, 3, 4}
    result = refine_packet(
        support, None, components, occ, graph, OpCounter()
    )
    assert result.support == {0, 1, 3, 4, 6}
    assert result.substitutions == [(2, 6)]


def test_degree_is_invariant():
    k = 8
    graph, components = _world(k, [(0, 1), (1, 2), (3, 4)])
    occ = OccurrenceTracker(k)
    for _ in range(4):
        occ.record_sent({0, 3, 5})
    support = {0, 3, 5}
    result = refine_packet(
        support, None, components, occ, graph, OpCounter()
    )
    assert result.degree == 3


def test_no_substitution_when_uniform():
    """At uniform occurrences nothing is strictly less frequent."""
    k = 6
    graph, components = _world(k, [(0, 1), (2, 3), (4, 5)])
    occ = OccurrenceTracker(k)
    for x in range(k):
        occ.record_sent({x})
    support = {0, 2, 4}
    result = refine_packet(
        support, None, components, occ, graph, OpCounter()
    )
    assert result.support == {0, 2, 4}
    assert result.substitutions == []


def test_no_substitution_across_components():
    k = 6
    graph, components = _world(k, [(0, 1)])
    occ = OccurrenceTracker(k)
    for _ in range(3):
        occ.record_sent({3})
    # x3 is frequent but alone in its component: cannot be replaced.
    result = refine_packet(
        {3}, None, components, occ, graph, OpCounter()
    )
    assert result.support == {3}


def test_substitution_skips_natives_already_in_packet():
    k = 4
    graph, components = _world(k, [(0, 1)])
    occ = OccurrenceTracker(k)
    for _ in range(3):
        occ.record_sent({0})
    # x1 is x0's only partner but already in z: no substitution.
    result = refine_packet(
        {0, 1}, None, components, occ, graph, OpCounter()
    )
    assert result.support == {0, 1}
    assert result.substitutions == []


def test_payload_follows_substitution():
    k, m = 8, 16
    content = make_content(k, m, rng=11)
    graph, components = _world(
        k, [(2, 4), (4, 6)], content=content
    )
    occ = OccurrenceTracker(k)
    for support in ({2}, {2}, {2}, {0}, {1}, {3}, {4}, {5}):
        occ.record_sent(support)
    support = {0, 1, 2, 3, 4}
    payload = np.zeros(m, dtype=np.uint8)
    for i in support:
        payload ^= content[i]
    result = refine_packet(
        set(support), payload, components, occ, graph, OpCounter()
    )
    expected = np.zeros(m, dtype=np.uint8)
    for i in result.support:
        expected ^= content[i]
    assert np.array_equal(result.payload, expected)


def test_decoded_pair_payload():
    k, m = 6, 8
    content = make_content(k, m, rng=12)
    graph, components = _world(k, [], decoded=[1, 3], content=content)
    counter = OpCounter()
    pair = pair_payload(1, 3, components, graph, counter)
    assert np.array_equal(pair, content[1] ^ content[3])
    assert counter.get("payload_xor") == 1


def test_path_pair_payload_telescopes():
    k, m = 8, 8
    content = make_content(k, m, rng=13)
    graph, components = _world(k, [(2, 4), (4, 6)], content=content)
    counter = OpCounter()
    pair = pair_payload(2, 6, components, graph, counter)
    assert np.array_equal(pair, content[2] ^ content[6])
    assert counter.get("payload_xor") == 2  # two packets folded


def test_scan_limit_bounds_work():
    k = 40
    graph, components = _world(k, [(0, i) for i in range(1, 20)])
    occ = OccurrenceTracker(k)
    for _ in range(5):
        occ.record_sent({0})
    counter = OpCounter()
    result = refine_packet(
        {0}, None, components, occ, graph, counter, scan_limit=1
    )
    # With a scan limit of 1 only one candidate may be examined per native.
    assert result.candidates_examined <= 1


@settings(max_examples=50, deadline=None)
@given(
    k=st.integers(3, 14),
    edges=st.lists(
        st.tuples(st.integers(0, 13), st.integers(0, 13)), max_size=16
    ),
    history=st.lists(
        st.sets(st.integers(0, 13), min_size=1, max_size=5), max_size=20
    ),
    packet=st.sets(st.integers(0, 13), min_size=1, max_size=6),
    seed=st.integers(0, 2**16),
)
def test_refine_never_increases_variance(k, edges, history, packet, seed):
    """Refinement preserves degree and never worsens occurrence variance."""
    graph, components = _world(
        k, [(a % k, b % k) for a, b in edges if a % k != b % k]
    )
    occ = OccurrenceTracker(k)
    for support in history:
        occ.record_sent({x % k for x in support})
    support = {x % k for x in packet}
    before_var = float(
        np.var(occ.counts + np.isin(np.arange(k), list(support)))
    )
    result = refine_packet(
        set(support), None, components, occ, graph, OpCounter()
    )
    assert result.degree == len(support)
    after_var = float(
        np.var(occ.counts + np.isin(np.arange(k), list(result.support)))
    )
    assert after_var <= before_var + 1e-9
