"""Tests for Algorithm 3 — redundancy detection (degree <= 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.components import ConnectedComponents
from repro.core.redundancy import RedundancyDetector
from repro.core.support_index import SupportIndex
from repro.errors import DimensionError
from repro.gf2.bitvec import BitVector
from repro.gf2.matrix import IncrementalRref


def _detector(k):
    components = ConnectedComponents(k)
    index = SupportIndex()
    return RedundancyDetector(components, index), components, index


def test_empty_support_is_redundant():
    det, _, _ = _detector(4)
    assert det.is_redundant_reduced([])


def test_degree_one():
    det, components, _ = _detector(4)
    assert not det.is_redundant_reduced([2])
    components.mark_decoded(2)
    assert det.is_redundant([2])  # raw entry point strips decoded


def test_degree_two_uses_components():
    det, components, _ = _detector(6)
    assert not det.is_redundant_reduced([0, 1])
    components.add_edge(0, 0, 1)
    assert det.is_redundant_reduced([0, 1])
    # Collision-awareness: connectivity through a chain also counts.
    components.add_edge(1, 1, 2)
    assert det.is_redundant_reduced([0, 2])


def test_degree_three_exact_support():
    det, _, index = _detector(8)
    assert not det.is_redundant_reduced([1, 2, 3])
    index.add(0, {1, 2, 3})
    assert det.is_redundant_reduced([1, 2, 3])
    assert not det.is_redundant_reduced([1, 2, 4])


def test_degree_three_with_decoded_native():
    """Paper terms: isRedundant(x'') and isRedundant(x + x')."""
    det, components, _ = _detector(8)
    components.mark_decoded(3)
    components.add_edge(0, 1, 2)
    # x1 + x2 generable, x3 decoded -> x1 + x2 + x3 redundant.
    assert det.is_redundant([1, 2, 3])
    # x1 + x4 not generable even though x3 is decoded.
    assert not det.is_redundant([1, 4, 3])


def test_degree_above_three_raises():
    det, _, _ = _detector(8)
    with pytest.raises(DimensionError):
        det.is_redundant_reduced([0, 1, 2, 3])


def test_drop_policy_counts():
    det, components, _ = _detector(6)
    components.add_edge(0, 0, 1)
    assert det.should_drop({0, 1})
    assert det.drops == 1
    assert not det.should_drop({2, 3})
    assert det.drops == 1


@settings(max_examples=60, deadline=None)
@given(
    k=st.integers(3, 12),
    stored=st.lists(
        st.sets(st.integers(0, 11), min_size=2, max_size=3), max_size=10
    ),
    decoded=st.sets(st.integers(0, 11), max_size=4),
    probe=st.sets(st.integers(0, 11), min_size=1, max_size=3),
)
def test_detector_is_sound_against_rank_oracle(k, stored, decoded, probe):
    """A True verdict implies the packet is in the span of held packets.

    Builds the detector's structures exactly as an LTNC node would
    (decoded natives + stored low-degree packets), and checks every
    "redundant" verdict against exact Gaussian elimination.
    """
    decoded = {x % k for x in decoded}
    stored = [
        frozenset(x % k for x in s) - decoded for s in stored
    ]
    stored = [s for s in stored if len(s) >= 2]
    probe = {x % k for x in probe}

    det, components, index = _detector(k)
    rref = IncrementalRref(k)
    for x in decoded:
        components.mark_decoded(x)
        rref.insert(BitVector.from_indices(k, [x]))
    for pid, s in enumerate(stored):
        # Mirror node behaviour: a redundant packet would be dropped at
        # reception, so only innovative ones enter the structures.
        if len(s) <= 3 and det.is_redundant_reduced(s):
            continue
        if len(s) == 2:
            a, b = s
            components.add_edge(pid, a, b)
        index.add(pid, s)
        rref.insert(BitVector.from_indices(k, s))
    reduced = probe - decoded
    if len(reduced) > 3:
        return
    if det.is_redundant(probe):
        vec = BitVector.from_indices(k, probe)
        assert rref.contains(vec), (
            f"detector flagged {sorted(probe)} but it is innovative"
        )
