"""Unit + property tests for occurrence tracking (core/occurrences.py)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.occurrences import OccurrenceTracker
from repro.errors import DimensionError


def test_initial_state():
    occ = OccurrenceTracker(4)
    assert occ.frequency(0) == 0
    assert occ.min_frequency() == 0
    assert occ.rsd() == 0.0
    assert occ.packets_sent == 0
    occ.check_invariants()


def test_record_sent_increments():
    occ = OccurrenceTracker(6)
    occ.record_sent({0, 2, 4})
    assert occ.frequency(0) == 1
    assert occ.frequency(1) == 0
    assert occ.packets_sent == 1
    occ.check_invariants()


def test_record_out_of_range():
    occ = OccurrenceTracker(4)
    with pytest.raises(DimensionError):
        occ.record_sent({4})


def test_min_frequency_tracks_global_min():
    occ = OccurrenceTracker(3)
    occ.record_sent({0})
    occ.record_sent({1})
    assert occ.min_frequency() == 0  # native 2 never sent
    occ.record_sent({2})
    assert occ.min_frequency() == 1
    occ.check_invariants()


def test_buckets_below_ascending_order():
    occ = OccurrenceTracker(4)
    occ.record_sent({0})
    occ.record_sent({0})
    occ.record_sent({1})
    # counts: x0=2, x1=1, x2=0, x3=0
    got = list(occ.buckets_below(2))
    assert [count for count, _ in got] == [0, 1]
    assert got[0][1] == {2, 3}
    assert got[1][1] == {1}


def test_buckets_below_empty_when_limit_at_min():
    occ = OccurrenceTracker(4)
    assert list(occ.buckets_below(0)) == []


def test_rsd_matches_numpy():
    occ = OccurrenceTracker(4)
    for support in ({0}, {0}, {0, 1}, {2}):
        occ.record_sent(support)
    import numpy as np

    counts = np.array([3, 1, 1, 0])
    assert occ.rsd() == pytest.approx(counts.std() / counts.mean())
    assert occ.mean() == pytest.approx(counts.mean())
    assert occ.variance() == pytest.approx(counts.var())


@settings(max_examples=50, deadline=None)
@given(
    k=st.integers(1, 12),
    sends=st.lists(
        st.sets(st.integers(0, 11), min_size=1, max_size=6), max_size=30
    ),
)
def test_buckets_always_mirror_counts(k, sends):
    occ = OccurrenceTracker(k)
    for support in sends:
        occ.record_sent({x % k for x in support})
    occ.check_invariants()
    # buckets_below enumerates exactly the natives strictly below limit.
    limit = occ.frequency(0) + 1
    seen = set()
    for count, bucket in occ.buckets_below(limit):
        for x in bucket:
            assert occ.frequency(x) == count
            seen.add(x)
    expected = {x for x in range(k) if occ.frequency(x) < limit}
    assert seen == expected
